#ifndef PDM_SERVER_WIRE_H_
#define PDM_SERVER_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

/// \file
/// The `pdm.wire.v1` framed binary protocol (DESIGN.md §10).
///
/// Every message — request or response — travels as one *frame*: a u32
/// little-endian payload length followed by that many payload bytes. The
/// payload starts with a fixed header (u8 opcode, u64 request id); requests
/// append an op-specific body, responses insert a u8 `pdm::StatusCode` after
/// the header and append either an error message (non-OK) or the op's result
/// body (OK). Ids are client-chosen and echoed verbatim, so clients may
/// pipeline arbitrarily and match responses out of a single read stream.
/// The server answers frames of one connection strictly in arrival order.
///
/// Like `pdm.snap.v1`, the layout is little-endian with doubles as raw
/// IEEE-754 bit patterns — a quote decoded from the wire is *bit*-identical
/// to the quote the broker produced, which is what makes the loopback replay
/// test's bit-identity pin possible (tests/server_test.cc).
///
/// This header holds the shared low-level codec (bounds-checked reader,
/// appending writer, frame splitting); the server and client assemble the
/// actual op payloads from these primitives so there is exactly one encoding
/// of each primitive on both sides.

namespace pdm::server {

/// Protocol identifier (mirrors the JSON schema naming convention).
inline constexpr char kProtocolName[] = "pdm.wire.v1";

/// A frame is `u32 payload_size` + payload.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Upper bound on one payload. Large enough for a 4096-request batch at
/// n = 100; anything bigger is a corrupt or hostile stream and the
/// connection is closed rather than buffered without bound.
inline constexpr size_t kMaxFramePayloadBytes = size_t{4} << 20;

enum class Opcode : uint8_t {
  kResolve = 1,
  kPostPrice = 2,
  kObserve = 3,
  kEstimateValue = 4,
  kPostPrices = 5,
  kObserves = 6,
  kPing = 7,
  /// Returns the server's metric registry as a `pdm.metrics.v1` binary dump
  /// (length-prefixed string body; decode with metrics::DecodeMetricsDump).
  kGetMetrics = 8,
};

/// Quote flag bits on the wire (`Quote::exploratory`/`certain_no_sale`).
inline constexpr uint8_t kQuoteExploratory = 1u << 0;
inline constexpr uint8_t kQuoteCertainNoSale = 1u << 1;

/// True when `code` is a valid request opcode.
bool ValidOpcode(uint8_t code);

/// Round-trips a StatusCode through its wire byte; out-of-range bytes decode
/// to kInvalidArgument (a foreign peer must never crash the decoder).
uint8_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t wire);

// --------------------------------------------------------------- writer

/// Appends wire primitives to a caller-owned byte buffer. `BeginFrame`
/// reserves the length prefix and `EndFrame` patches it, so whole frames are
/// assembled in place with no intermediate copies.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  /// Starts a frame and returns the patch cookie for EndFrame.
  size_t BeginFrame() {
    size_t at = out_->size();
    PutU32(0);
    return at;
  }

  /// Patches the length prefix written by the matching BeginFrame.
  void EndFrame(size_t cookie) {
    uint32_t payload = static_cast<uint32_t>(out_->size() - cookie - kFrameHeaderBytes);
    std::memcpy(out_->data() + cookie, &payload, sizeof payload);
  }

  void PutU8(uint8_t v) { out_->append(reinterpret_cast<const char*>(&v), sizeof v); }
  void PutU32(uint32_t v) { out_->append(reinterpret_cast<const char*>(&v), sizeof v); }
  void PutU64(uint64_t v) { out_->append(reinterpret_cast<const char*>(&v), sizeof v); }

  /// Raw IEEE-754 bit pattern — exact round trip, NaN-safe.
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    PutU64(bits);
  }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

  /// Request/response headers.
  void PutRequestHeader(Opcode op, uint64_t id) {
    PutU8(static_cast<uint8_t>(op));
    PutU64(id);
  }
  void PutResponseHeader(Opcode op, uint64_t id, StatusCode code) {
    PutU8(static_cast<uint8_t>(op));
    PutU64(id);
    PutU8(StatusCodeToWire(code));
  }

 private:
  std::string* out_;
};

// --------------------------------------------------------------- reader

/// Bounds-checked cursor over one frame payload. Every Get reports failure
/// instead of reading past the end, so a truncated or hostile payload
/// decodes to a clean error, never UB.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* v) { return GetBytes(v, sizeof *v); }
  bool GetU32(uint32_t* v) { return GetBytes(v, sizeof *v); }
  bool GetU64(uint64_t* v) { return GetBytes(v, sizeof *v); }

  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }

  /// Length-prefixed string; the view aliases the payload buffer.
  bool GetString(std::string_view* s) {
    uint32_t size;
    if (!GetU32(&size)) return false;
    if (bytes_.size() - pos_ < size) return false;
    *s = bytes_.substr(pos_, size);
    pos_ += size;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  bool GetBytes(void* out, size_t size) {
    if (bytes_.size() - pos_ < size) return false;
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------ frame split

enum class FrameResult {
  kFrame,      ///< one complete frame extracted
  kNeedMore,   ///< buffer holds a partial frame; read more bytes
  kMalformed,  ///< length prefix exceeds kMaxFramePayloadBytes — close
};

/// Examines `buffer` starting at `offset`. On kFrame, `*payload` views the
/// payload bytes inside `buffer` and `*next_offset` is where the following
/// frame starts. The caller owns compaction of consumed bytes.
FrameResult NextFrame(std::string_view buffer, size_t offset,
                      std::string_view* payload, size_t* next_offset);

}  // namespace pdm::server

#endif  // PDM_SERVER_WIRE_H_
