#include <gtest/gtest.h>

#include <cmath>

#include "market/adversarial.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"

namespace pdm {
namespace {

EllipsoidEngineConfig Lemma8EngineConfig(int64_t horizon, bool allow_conservative_cuts) {
  EllipsoidEngineConfig config;
  config.dim = 2;
  config.horizon = horizon;
  config.initial_radius = 1.0;  // Lemma 8 sets R = 1, S = 1
  config.use_reserve = true;
  config.allow_conservative_cuts = allow_conservative_cuts;
  return config;
}

TEST(AdversarialStream, PhaseStructure) {
  AdversarialStreamConfig config;
  config.dim = 2;
  config.horizon = 10;
  AdversarialQueryStream stream(config);
  EllipsoidPricingEngine engine(Lemma8EngineConfig(10, false));
  stream.BindEngine(&engine);
  Rng rng(1);
  for (int t = 0; t < 5; ++t) {
    MarketRound round = stream.Next(&rng);
    EXPECT_EQ(round.features, (Vector{1.0, 0.0}));
    EXPECT_DOUBLE_EQ(round.value, config.theta1);
  }
  for (int t = 5; t < 10; ++t) {
    MarketRound round = stream.Next(&rng);
    EXPECT_EQ(round.features, (Vector{0.0, 1.0}));
    EXPECT_DOUBLE_EQ(round.reserve, 0.0);
    EXPECT_DOUBLE_EQ(round.value, config.theta2);
  }
}

TEST(AdversarialStream, ReserveTracksEngineMidpoint) {
  AdversarialStreamConfig config;
  config.horizon = 100;
  AdversarialQueryStream stream(config);
  EllipsoidPricingEngine engine(Lemma8EngineConfig(100, false));
  stream.BindEngine(&engine);
  Rng rng(2);
  MarketRound round = stream.Next(&rng);
  EXPECT_DOUBLE_EQ(round.reserve,
                   engine.EstimateValueInterval(round.features).midpoint());
}

TEST(Lemma8, ConservativeCutsInflateOrthogonalAxis) {
  // Phase 1 alone. The safe engine expands e₂ only during its O(log(R/ε))
  // exploratory cuts (factor n/√(n²−1) each) and then stops; the unsafe
  // engine keeps cutting on every conservative round and inflates e₂
  // exponentially until double precision saturates.
  int64_t horizon = 400;
  AdversarialStreamConfig stream_config;
  stream_config.horizon = horizon;

  auto run_phase1 = [&](bool allow_cuts) {
    AdversarialQueryStream stream(stream_config);
    EllipsoidPricingEngine engine(Lemma8EngineConfig(horizon, allow_cuts));
    stream.BindEngine(&engine);
    Rng rng(3);
    for (int64_t t = 0; t < horizon / 2; ++t) {
      MarketRound round = stream.Next(&rng);
      PostedPrice posted = engine.PostPrice(round.features, round.reserve);
      engine.Observe(!posted.certain_no_sale && posted.price <= round.value);
    }
    return engine.EstimateValueInterval(Vector{0.0, 1.0}).width();
  };

  double safe_width = run_phase1(false);
  double unsafe_width = run_phase1(true);
  EXPECT_LT(safe_width, 100.0);  // bounded by the exploratory budget
  EXPECT_GT(unsafe_width, 100.0 * safe_width)
      << "conservative cuts should inflate the e2 axis";
}

TEST(Lemma8, UnsafeEngineSuffersLinearRegretGrowth) {
  // Pre-saturation regime (the e₁ shape entry underflows after ~95 unsafe
  // cuts, which caps the idealized real-arithmetic blow-up): the unsafe
  // engine's regret grows linearly with T while the safe engine's barely
  // moves, and the unsafe engine is a multiple of the safe one.
  auto run = [&](int64_t horizon, bool allow_cuts) {
    AdversarialStreamConfig stream_config;
    stream_config.horizon = horizon;
    AdversarialQueryStream stream(stream_config);
    EllipsoidPricingEngine engine(Lemma8EngineConfig(horizon, allow_cuts));
    SimulationOptions options;
    options.rounds = horizon;
    Rng rng(4);
    return RunMarket(&stream, &engine, options, &rng).tracker.cumulative_regret();
  };

  double safe_small = run(50, false);
  double safe_large = run(200, false);
  double unsafe_small = run(50, true);
  double unsafe_large = run(200, true);
  EXPECT_GT(unsafe_large, 2.0 * safe_large)
      << "safe=" << safe_large << " unsafe=" << unsafe_large;
  double unsafe_growth = unsafe_large - unsafe_small;
  double safe_growth = safe_large - safe_small;
  EXPECT_GT(unsafe_growth, 3.0 * safe_growth + 1.0)
      << "unsafe growth " << unsafe_growth << " vs safe growth " << safe_growth;
}

}  // namespace
}  // namespace pdm
