// Zero-allocation regression tests for the steady-state pricing hot path.
//
// This binary replaces the global `operator new` family with hooks that bump
// the thread-local counter in common/memory (the library installs no hook
// itself — counting is strictly opt-in per binary). Each test warms a
// (stream, engine) pair until every reusable buffer has reached steady-state
// capacity, then runs 1000 further rounds and asserts the counter does not
// move: the per-round pipeline — stream fill, PostPrice, Observe, regret
// accounting — provably never touches the heap.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "broker/broker.h"
#include "common/arena.h"
#include "common/memory.h"
#include "metrics/metrics.h"
#include "market/linear_market.h"
#include "market/airbnb_market.h"
#include "market/kernel_market.h"
#include "market/regret_tracker.h"
#include "market/round.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/engine_state.h"
#include "pricing/feature_maps.h"
#include "pricing/generalized_engine.h"
#include "pricing/interval_engine.h"
#include "pricing/link_functions.h"
#include "scenario/mechanism_registry.h"
#include "scenario/stream_factory.h"

// ---------------------------------------------------------------------------
// Replaceable operator new/delete hooks. Every allocation in this binary
// (gtest included) bumps the counter; the tests only read deltas around the
// measured loops. Aligned variants are required since C++17 for
// over-aligned types.
// ---------------------------------------------------------------------------

namespace {

void* CountedAlloc(std::size_t size) {
  pdm::NoteAllocation();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  pdm::NoteAllocation();
  if (void* p = std::aligned_alloc(alignment, ((size + alignment - 1) / alignment) * alignment)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace pdm {
namespace {

constexpr int kWarmupRounds = 500;
constexpr int kMeasuredRounds = 1000;

/// Runs `rounds` full market iterations (stream fill → PostPrice → Observe →
/// regret accounting) against the given pair, mirroring RunMarket's loop.
void DriveRounds(QueryStream* stream, PricingEngine* engine, RegretTracker* tracker,
                 MarketRound* round, Rng* rng, int rounds) {
  for (int t = 0; t < rounds; ++t) {
    stream->Next(rng, round);
    // Adaptive streams (market/adversarial.h) probe the knowledge set every
    // round, so the diagnostic observer is part of the hot-path contract too.
    ValueInterval interval = engine->EstimateValueInterval(round->features);
    (void)interval;
    PostedPrice posted = engine->PostPrice(round->features, round->reserve);
    bool accepted = !posted.certain_no_sale && posted.price <= round->value;
    engine->Observe(accepted);
    tracker->Observe(*round, posted, accepted);
  }
}

/// Warmup, snapshot, measure: asserts the measured rounds allocated nothing.
void ExpectSteadyStateAllocationFree(QueryStream* stream, PricingEngine* engine,
                                     uint64_t seed) {
  RegretTracker tracker(0);
  MarketRound round;
  Rng rng(seed);
  stream->BindEngine(engine);
  DriveRounds(stream, engine, &tracker, &round, &rng, kWarmupRounds);

  int64_t before = ThreadAllocationCount();
  DriveRounds(stream, engine, &tracker, &round, &rng, kMeasuredRounds);
  int64_t after = ThreadAllocationCount();
  EXPECT_EQ(after - before, 0)
      << (after - before) << " allocations in " << kMeasuredRounds
      << " steady-state rounds of " << engine->name();
}

TEST(AllocationCounter, HookIsLive) {
  // Sanity: the replaced operator new really reaches the counter (otherwise
  // every zero-delta assertion below would be vacuous).
  int64_t before = ThreadAllocationCount();
  std::vector<double>* v = new std::vector<double>(1024);
  int64_t after = ThreadAllocationCount();
  delete v;
  EXPECT_GE(after - before, 2);  // the vector object + its buffer
}

/// The four published mechanism variants of the ellipsoid engine, priced over
/// the paper's noisy-linear-query workload.
TEST(SteadyStateAllocations, EllipsoidVariantsOverLinearStream) {
  struct VariantCase {
    bool use_reserve;
    double delta;
  };
  for (const VariantCase& variant :
       {VariantCase{false, 0.0}, VariantCase{false, 0.01}, VariantCase{true, 0.0},
        VariantCase{true, 0.01}}) {
    NoisyLinearMarketConfig market;
    market.feature_dim = 8;
    market.num_owners = 120;
    market.value_noise_sigma = variant.delta > 0.0 ? 0.003 : 0.0;
    Rng setup_rng(11);
    NoisyLinearQueryStream stream(market, &setup_rng);

    EllipsoidEngineConfig config;
    config.dim = market.feature_dim;
    config.horizon = kWarmupRounds + kMeasuredRounds;
    config.initial_radius = stream.RecommendedRadius();
    config.use_reserve = variant.use_reserve;
    config.delta = variant.delta;
    EllipsoidPricingEngine engine(config);

    ExpectSteadyStateAllocationFree(&stream, &engine, /*seed=*/21);
  }
}

TEST(SteadyStateAllocations, IntervalEngineOverReplayStream) {
  // One-dimensional special case: precompute 1-d rounds once, replay them.
  std::vector<MarketRound> rounds;
  Rng rng(31);
  for (int i = 0; i < 64; ++i) {
    MarketRound round;
    round.features = {rng.NextUniform(0.2, 1.0)};
    round.value = 0.7 * round.features[0];
    round.reserve = 0.4 * round.value;
    rounds.push_back(round);
  }
  ReplayQueryStream stream(&rounds);

  IntervalEngineConfig config;
  config.theta_min = 0.0;
  config.theta_max = 2.0;
  config.horizon = kWarmupRounds + kMeasuredRounds;
  IntervalPricingEngine engine(config);

  ExpectSteadyStateAllocationFree(&stream, &engine, /*seed=*/41);
}

TEST(SteadyStateAllocations, GeneralizedEngineOverKernelStream) {
  // The Theorem 2 reduction end to end: kernel feature map + identity link
  // around an ellipsoid base, against the kernelized workload.
  KernelMarketConfig market;
  market.input_dim = 3;
  market.num_landmarks = 6;
  Rng setup_rng(51);
  KernelQueryStream stream(market, &setup_rng);

  EllipsoidEngineConfig base_config;
  base_config.dim = market.num_landmarks;
  base_config.horizon = kWarmupRounds + kMeasuredRounds;
  base_config.initial_radius = stream.RecommendedRadius();
  GeneralizedPricingEngine engine(
      std::make_unique<EllipsoidPricingEngine>(base_config),
      std::make_shared<IdentityLink>(),
      std::make_shared<KernelFeatureMap>(stream.feature_map()));

  ExpectSteadyStateAllocationFree(&stream, &engine, /*seed=*/61);
}

TEST(SteadyStateAllocations, MechanismRegistryBuiltEnginesOverScenarioStreams) {
  // The declarative path must inherit the hot-path guarantee: engines built
  // by scenario::MechanismRegistry over scenario::StreamFactory streams are
  // the same wiring as above, assembled by name instead of by hand.
  scenario::StreamFactory factory;
  for (const char* mechanism :
       {"pure", "uncertainty", "reserve", "reserve+uncertainty", "risk-averse"}) {
    scenario::ScenarioSpec spec;
    spec.name = std::string("alloc/linear/") + mechanism;
    spec.stream = scenario::StreamKind::kLinear;
    spec.mechanism = mechanism;
    spec.n = 8;
    spec.rounds = kWarmupRounds + kMeasuredRounds;
    spec.delta = 0.01;
    spec.linear.num_owners = 120;
    spec.workload_seed = 11;
    scenario::WorkloadInfo info = factory.Prepare(spec);
    Rng rng(21);
    std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
    std::unique_ptr<PricingEngine> engine =
        scenario::MechanismRegistry::Builtin().Build(spec, info);
    ExpectSteadyStateAllocationFree(stream.get(), engine.get(), /*seed=*/21);
  }

  // The generalized (kernel map + link) composition through the registry.
  scenario::ScenarioSpec kernel_spec;
  kernel_spec.name = "alloc/kernel/reserve";
  kernel_spec.stream = scenario::StreamKind::kKernel;
  kernel_spec.mechanism = "reserve";
  kernel_spec.n = 6;
  kernel_spec.kernel.input_dim = 3;
  kernel_spec.rounds = kWarmupRounds + kMeasuredRounds;
  kernel_spec.sim_seed = 51;
  scenario::WorkloadInfo info = factory.Prepare(kernel_spec);
  Rng rng(kernel_spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(kernel_spec, &rng);
  std::unique_ptr<PricingEngine> engine =
      scenario::MechanismRegistry::Builtin().Build(kernel_spec, info);
  ExpectSteadyStateAllocationFree(stream.get(), engine.get(), /*seed=*/61);
}

TEST(SteadyStateAllocations, MetricInstrumentOpsAreAllocationFree) {
  // The DESIGN.md §13 hot-path contract: once a handle is resolved,
  // Increment/Add/Set/Record are single relaxed atomic RMWs — no heap, no
  // lock. Holds identically for live-registry cells and the no-op gateway's
  // sink cells (default-constructed handles).
  pdm::metrics::MetricRegistry registry;
  pdm::metrics::Counter counter = registry.GetCounter("alloc_total", "h");
  pdm::metrics::Gauge gauge = registry.GetGauge("alloc_gauge", "h");
  pdm::metrics::Histogram hist = registry.GetHistogram("alloc_ns", "h");
  pdm::metrics::Counter sink_counter;   // noop-gateway handles
  pdm::metrics::Histogram sink_hist;

  int64_t before = ThreadAllocationCount();
  for (int i = 0; i < kMeasuredRounds; ++i) {
    counter.Increment();
    counter.Add(3);
    gauge.Set(static_cast<double>(i));
    gauge.Add(1.0);
    hist.Record(static_cast<uint64_t>(i) * 97);
    sink_counter.Increment();
    sink_hist.Record(static_cast<uint64_t>(i));
  }
  int64_t after = ThreadAllocationCount();
  EXPECT_EQ(after - before, 0)
      << (after - before) << " allocations in " << kMeasuredRounds
      << " metric instrument rounds";
}

TEST(SteadyStateAllocations, BrokerRoundTripsWithLiveMetricsRegistry) {
  // The serving hot path with a LIVE registry wired: the per-round metric
  // writes (quote counter, accept/reject counters, regret gauge, batch-size
  // histogram) must not reintroduce heap traffic. Registration allocates at
  // wiring time only — before the measured window opens.
  scenario::StreamFactory factory;
  scenario::ScenarioSpec spec;
  spec.name = "alloc/broker/live-metrics";
  spec.stream = scenario::StreamKind::kLinear;
  spec.mechanism = "reserve+uncertainty";
  spec.n = 8;
  spec.rounds = kWarmupRounds + kMeasuredRounds;
  spec.delta = 0.01;
  spec.linear.num_owners = 120;
  spec.workload_seed = 17;
  scenario::WorkloadInfo info = factory.Prepare(spec);

  metrics::MetricRegistry registry;
  broker::BrokerConfig config;
  config.metrics = &registry;
  broker::Broker broker(config);
  ASSERT_TRUE(broker.OpenSession(spec.name, spec, info).ok());
  broker::ProductHandle handle;
  ASSERT_TRUE(broker.Resolve(spec.name, &handle).ok());
  Rng rng(27);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  stream->BindEngine(broker.FindEngine(spec.name));

  constexpr int kWindow = 8;
  MarketRound rounds[kWindow];
  broker::HandleRequest requests[kWindow];
  broker::Quote quotes[kWindow];
  broker::FeedbackRequest feedback[kWindow];
  StatusCode codes[kWindow];
  auto drive = [&](int iterations) {
    for (int it = 0; it < iterations; ++it) {
      for (int i = 0; i < kWindow; ++i) {
        stream->Next(&rng, &rounds[i]);
        requests[i] = {handle, rounds[i].features, rounds[i].reserve};
      }
      ASSERT_TRUE(broker.PostPrices(std::span<const broker::HandleRequest>(requests),
                                    std::span<broker::Quote>(quotes))
                      .ok());
      for (int i = 0; i < kWindow; ++i) {
        feedback[i].ticket = quotes[i].ticket;
        feedback[i].accepted =
            !quotes[i].certain_no_sale && quotes[i].price <= rounds[i].value;
      }
      ASSERT_TRUE(broker
                      .Observes(std::span<const broker::FeedbackRequest>(feedback),
                                std::span<StatusCode>(codes))
                      .ok());
    }
  };

  drive(kWarmupRounds / kWindow);
  int64_t before = ThreadAllocationCount();
  drive(kMeasuredRounds / kWindow);
  int64_t after = ThreadAllocationCount();
  EXPECT_EQ(after - before, 0)
      << (after - before) << " allocations in " << kMeasuredRounds
      << " live-metrics broker round trips";
  // Every priced round trip was counted (iterations truncate to kWindow).
  EXPECT_EQ(registry.GetCounter("pdm_broker_quotes_total", "").value(),
            static_cast<uint64_t>((kWarmupRounds / kWindow) * kWindow +
                                  (kMeasuredRounds / kWindow) * kWindow));
}

TEST(SteadyStateAllocations, BrokerTicketedRoundTrips) {
  // The serving surface must inherit the hot-path guarantee end to end:
  // product lookup, PostPrice (span → engine bridge), ticket issue + cut
  // detach, and Observe (ticket retire + detached cut) — all through the
  // striped-lock Broker front end, with several tickets in flight so slot
  // recycling is exercised. Ok statuses carry no message and allocate
  // nothing (DESIGN.md §9).
  scenario::StreamFactory factory;
  scenario::ScenarioSpec spec;
  spec.name = "alloc/broker/linear";
  spec.stream = scenario::StreamKind::kLinear;
  spec.mechanism = "reserve+uncertainty";
  spec.n = 8;
  spec.rounds = kWarmupRounds + kMeasuredRounds;
  spec.delta = 0.01;
  spec.linear.num_owners = 120;
  spec.workload_seed = 11;
  scenario::WorkloadInfo info = factory.Prepare(spec);

  broker::Broker broker;
  ASSERT_TRUE(broker.OpenSession(spec.name, spec, info).ok());
  Rng rng(21);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  stream->BindEngine(broker.FindEngine(spec.name));

  constexpr int kWindow = 4;  // outstanding tickets per batch
  MarketRound rounds[kWindow];
  broker::Quote quotes[kWindow];
  auto drive = [&](int iterations) {
    for (int it = 0; it < iterations; ++it) {
      for (int i = 0; i < kWindow; ++i) {
        stream->Next(&rng, &rounds[i]);
        pdm::Status status = broker.PostPrice(
            {spec.name, rounds[i].features, rounds[i].reserve}, &quotes[i]);
        ASSERT_TRUE(status.ok());
      }
      for (int i = 0; i < kWindow; ++i) {
        bool accepted =
            !quotes[i].certain_no_sale && quotes[i].price <= rounds[i].value;
        ASSERT_TRUE(broker.Observe(quotes[i].ticket, accepted).ok());
      }
    }
  };

  drive(kWarmupRounds / kWindow);
  int64_t before = ThreadAllocationCount();
  drive(kMeasuredRounds / kWindow);
  int64_t after = ThreadAllocationCount();
  EXPECT_EQ(after - before, 0)
      << (after - before) << " allocations in " << kMeasuredRounds
      << " steady-state broker round trips";
}

TEST(SteadyStateAllocations, BrokerHandlePathBatchedMixedProductRoundTrips) {
  // The PR 5 fast path end to end: snapshot-directory probe (no string
  // hashing), per-session lock, grouped batched PostPrices over a batch
  // that interleaves TWO products, and grouped batched Observes. All of it
  // — including the per-thread batch scratch and each session's ticket
  // table — must reach steady-state capacity and stop allocating.
  scenario::StreamFactory factory;
  broker::Broker broker;
  std::array<scenario::ScenarioSpec, 2> specs;
  std::array<broker::ProductHandle, 2> handles;
  std::array<std::unique_ptr<QueryStream>, 2> streams;
  std::array<Rng, 2> rngs{Rng(21), Rng(22)};
  const char* mechanisms[] = {"reserve+uncertainty", "reserve"};
  for (int p = 0; p < 2; ++p) {
    scenario::ScenarioSpec& spec = specs[p];
    spec.name = std::string("alloc/broker/handle") + std::to_string(p);
    spec.stream = scenario::StreamKind::kLinear;
    spec.mechanism = mechanisms[p];
    spec.n = 8;
    spec.rounds = kWarmupRounds + kMeasuredRounds;
    spec.delta = 0.01;
    spec.linear.num_owners = 120;
    spec.workload_seed = 31 + static_cast<uint64_t>(p);
    scenario::WorkloadInfo info = factory.Prepare(spec);
    ASSERT_TRUE(broker.OpenSession(spec.name, spec, info).ok());
    ASSERT_TRUE(broker.Resolve(spec.name, &handles[p]).ok());
    streams[p] = factory.CreateStream(spec, &rngs[p]);
    streams[p]->BindEngine(broker.FindEngine(spec.name));
  }

  constexpr int kWindow = 8;  // 4 tickets per product per batch, interleaved
  MarketRound rounds[kWindow];
  broker::HandleRequest requests[kWindow];
  broker::Quote quotes[kWindow];
  broker::FeedbackRequest feedback[kWindow];
  StatusCode codes[kWindow];
  auto drive = [&](int iterations) {
    for (int it = 0; it < iterations; ++it) {
      for (int i = 0; i < kWindow; ++i) {
        int p = i % 2;  // alternate products within the batch
        streams[p]->Next(&rngs[p], &rounds[i]);
        requests[i] = {handles[p], rounds[i].features, rounds[i].reserve};
      }
      ASSERT_TRUE(broker.PostPrices(std::span<const broker::HandleRequest>(requests),
                                    std::span<broker::Quote>(quotes))
                      .ok());
      for (int i = 0; i < kWindow; ++i) {
        feedback[i].ticket = quotes[i].ticket;
        feedback[i].accepted =
            !quotes[i].certain_no_sale && quotes[i].price <= rounds[i].value;
      }
      ASSERT_TRUE(broker
                      .Observes(std::span<const broker::FeedbackRequest>(feedback),
                                std::span<StatusCode>(codes))
                      .ok());
      for (StatusCode code : codes) ASSERT_EQ(code, StatusCode::kOk);
    }
  };

  drive(kWarmupRounds / kWindow);
  int64_t before = ThreadAllocationCount();
  drive(kMeasuredRounds / kWindow);
  int64_t after = ThreadAllocationCount();
  EXPECT_EQ(after - before, 0)
      << (after - before) << " allocations in " << kMeasuredRounds
      << " steady-state handle-path broker round trips";
}

TEST(SteadyStateAllocations, BatchedEnginePanelQuotes) {
  // The batched quoting path at the engine layer (DESIGN.md §11): a full
  // panel of PostPriceBatch quotes plus their detached feedback must stop
  // allocating once the engine's panel workspaces and the caller's cut
  // contexts reach steady-state capacity.
  NoisyLinearMarketConfig market;
  market.feature_dim = 8;
  market.num_owners = 120;
  market.value_noise_sigma = 0.003;
  Rng setup_rng(81);
  NoisyLinearQueryStream stream(market, &setup_rng);

  EllipsoidEngineConfig config;
  config.dim = market.feature_dim;
  config.horizon = kWarmupRounds + kMeasuredRounds;
  config.initial_radius = stream.RecommendedRadius();
  config.delta = 0.01;
  EllipsoidPricingEngine engine(config);
  ASSERT_TRUE(engine.SupportsBatchedQuotes());
  stream.BindEngine(&engine);

  constexpr int kBatch = 32;
  const int dim = market.feature_dim;
  MarketRound round;
  std::vector<double> panel(static_cast<size_t>(kBatch) * dim);
  double reserves[kBatch];
  double values[kBatch];
  PostedPrice posted[kBatch];
  std::vector<PendingCut> cuts(kBatch);
  std::vector<PendingCut*> cut_ptrs(kBatch);
  for (int i = 0; i < kBatch; ++i) cut_ptrs[i] = &cuts[static_cast<size_t>(i)];

  Rng rng(91);
  auto drive = [&](int iterations) {
    for (int it = 0; it < iterations; ++it) {
      for (int i = 0; i < kBatch; ++i) {
        stream.Next(&rng, &round);
        std::copy(round.features.begin(), round.features.end(),
                  panel.begin() + static_cast<size_t>(i) * dim);
        reserves[i] = round.reserve;
        values[i] = round.value;
      }
      engine.PostPriceBatch(panel.data(), kBatch, reserves, posted, cut_ptrs.data());
      for (int i = 0; i < kBatch; ++i) {
        bool accepted = !posted[i].certain_no_sale && posted[i].price <= values[i];
        engine.ObserveDetached(cuts[static_cast<size_t>(i)], accepted);
      }
    }
  };

  drive(kWarmupRounds / kBatch);
  int64_t before = ThreadAllocationCount();
  drive(kMeasuredRounds / kBatch);
  int64_t after = ThreadAllocationCount();
  EXPECT_EQ(after - before, 0)
      << (after - before) << " allocations in " << kMeasuredRounds
      << " steady-state batched engine rounds";
}

TEST(SteadyStateAllocations, BrokerHandlePathFullTileSameProductBatches) {
  // A full kQuoteTile same-product batch through the handle path: the
  // broker's gather/scatter scratch, the session's panel pack, the engine's
  // matrix–panel pass, and the batched feedback must all be allocation-free
  // in steady state.
  scenario::StreamFactory factory;
  broker::Broker broker;
  scenario::ScenarioSpec spec;
  spec.name = "alloc/broker/paneltile";
  spec.stream = scenario::StreamKind::kLinear;
  spec.mechanism = "reserve+uncertainty";
  spec.n = 8;
  spec.rounds = kWarmupRounds + kMeasuredRounds;
  spec.delta = 0.01;
  spec.linear.num_owners = 120;
  spec.workload_seed = 41;
  scenario::WorkloadInfo info = factory.Prepare(spec);
  ASSERT_TRUE(broker.OpenSession(spec.name, spec, info).ok());
  broker::ProductHandle handle;
  ASSERT_TRUE(broker.Resolve(spec.name, &handle).ok());
  Rng rng(51);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  stream->BindEngine(broker.FindEngine(spec.name));

  constexpr int kWindow = broker::PricingSession::kQuoteTile;
  MarketRound rounds[kWindow];
  broker::HandleRequest requests[kWindow];
  broker::Quote quotes[kWindow];
  broker::FeedbackRequest feedback[kWindow];
  StatusCode codes[kWindow];
  auto drive = [&](int iterations) {
    for (int it = 0; it < iterations; ++it) {
      for (int i = 0; i < kWindow; ++i) {
        stream->Next(&rng, &rounds[i]);
        requests[i] = {handle, rounds[i].features, rounds[i].reserve};
      }
      ASSERT_TRUE(broker.PostPrices(std::span<const broker::HandleRequest>(requests),
                                    std::span<broker::Quote>(quotes))
                      .ok());
      for (int i = 0; i < kWindow; ++i) {
        feedback[i].ticket = quotes[i].ticket;
        feedback[i].accepted =
            !quotes[i].certain_no_sale && quotes[i].price <= rounds[i].value;
      }
      ASSERT_TRUE(broker
                      .Observes(std::span<const broker::FeedbackRequest>(feedback),
                                std::span<StatusCode>(codes))
                      .ok());
      for (StatusCode code : codes) ASSERT_EQ(code, StatusCode::kOk);
    }
  };

  drive(kWarmupRounds / kWindow);
  int64_t before = ThreadAllocationCount();
  drive(kMeasuredRounds / kWindow);
  int64_t after = ThreadAllocationCount();
  EXPECT_EQ(after - before, 0)
      << (after - before) << " allocations in " << kMeasuredRounds
      << " steady-state full-tile batched broker round trips";
}

TEST(SlabArena, BumpAllocationWithinAChunkIsHeapFree) {
  SlabArena arena;  // 64 KiB chunks
  // Prime the first chunk (one aligned heap allocation + chunk bookkeeping).
  void* first = arena.Allocate(64);
  ASSERT_NE(first, nullptr);
  ASSERT_EQ(arena.chunk_count(), 1u);

  // Every further in-chunk allocation is a pure pointer bump: no heap.
  int64_t before = ThreadAllocationCount();
  for (int i = 0; i < 500; ++i) {
    void* p = arena.Allocate(64);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kCacheLineSize, 0u);
  }
  EXPECT_EQ(ThreadAllocationCount() - before, 0);
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.bytes_used(), 64u * 501);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());

  // An oversized request gets its own dedicated chunk instead of failing.
  void* big = arena.Allocate(256 * 1024);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.chunk_count(), 2u);
}

TEST(ArenaPool, SteadyStateChurnRecyclesStorageWithoutHeapTraffic) {
  struct Payload {
    explicit Payload(int v) : value(v) {}
    int value;
    char pad[200];  // bigger than a free-list node; forces real block reuse
  };
  SlabArena arena;
  ArenaPool<Payload> pool(&arena);

  // High-water mark: 32 simultaneously live objects.
  std::vector<Payload*> live;
  for (int i = 0; i < 32; ++i) live.push_back(pool.Create(i));
  EXPECT_EQ(pool.live(), 32u);
  size_t reserved_at_peak = arena.bytes_reserved();
  for (Payload* p : live) pool.Destroy(p);
  live.clear();
  EXPECT_EQ(pool.live(), 0u);

  // Steady-state churn below the high-water mark: zero heap allocations,
  // zero arena growth — every Create pops the free list.
  int64_t before = ThreadAllocationCount();
  size_t used_before = arena.bytes_used();
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 32; ++i) {
      Payload* p = pool.Create(cycle * 32 + i);
      ASSERT_EQ(p->value, cycle * 32 + i);
      live.push_back(p);
    }
    for (Payload* p : live) pool.Destroy(p);
    live.clear();
  }
  EXPECT_EQ(ThreadAllocationCount() - before, 0);
  EXPECT_EQ(arena.bytes_used(), used_before);
  EXPECT_EQ(arena.bytes_reserved(), reserved_at_peak);
  EXPECT_EQ(pool.recycled(), 100u * 32);
  // LIFO recycling: the most recently destroyed block is handed out first
  // (hot in cache), and blocks stay cache-line-aligned across reuse.
  Payload* a = pool.Create(1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % kCacheLineSize, 0u);
  pool.Destroy(a);
  Payload* b = pool.Create(2);
  EXPECT_EQ(static_cast<void*>(a), static_cast<void*>(b));
  pool.Destroy(b);
}

TEST(SteadyStateAllocations, BrokerSessionPoolRecyclesAcrossOpenCloseChurn) {
  // Open/close churn against the broker: session objects come from the
  // arena pool and are recycled on close, so the per-cycle arena growth is
  // exactly the (tombstoned, never-reused — ticket-base uniqueness) slot
  // records and nothing else. The growth per cycle must therefore be
  // CONSTANT from the first full cycle on; if closed sessions leaked pool
  // blocks, each cycle would grow by an extra 8 sessions' worth.
  scenario::StreamFactory factory;
  scenario::ScenarioSpec spec;
  spec.name = "alloc/churn/base";
  spec.stream = scenario::StreamKind::kLinear;
  spec.mechanism = "reserve";
  spec.n = 6;
  spec.rounds = 100;
  spec.linear.num_owners = 80;
  spec.workload_seed = 13;
  scenario::WorkloadInfo info = factory.Prepare(spec);

  broker::Broker broker;
  auto name_of = [](int i) { return "alloc/churn/p" + std::to_string(i); };
  auto run_cycle = [&]() {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(broker.OpenSession(name_of(i), spec, info).ok());
    }
    broker::BrokerStats stats = broker.Stats();
    EXPECT_EQ(stats.slab_live_slots, 8u);
    EXPECT_EQ(stats.open_sessions, 8u);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(broker.CloseSession(name_of(i)).ok());
    }
  };
  run_cycle();  // warm the session pool to its high-water mark
  size_t used_after_warmup = broker.Stats().arena_bytes_used;
  run_cycle();
  size_t per_cycle = broker.Stats().arena_bytes_used - used_after_warmup;
  for (int cycle = 0; cycle < 6; ++cycle) {
    size_t before = broker.Stats().arena_bytes_used;
    run_cycle();
    EXPECT_EQ(broker.Stats().arena_bytes_used - before, per_cycle)
        << "arena growth changed in cycle " << cycle;
  }
  broker::BrokerStats stats = broker.Stats();
  EXPECT_EQ(stats.slab_live_slots, 0u);
  EXPECT_EQ(stats.slab_tombstoned_slots, stats.slab_total_slots);
  EXPECT_EQ(stats.slab_total_slots, 8u * 8);
}

TEST(SteadyStateAllocations, RunMarketScratchReuse) {
  // RunMarket itself (with a caller-held scratch) allocates only O(1) per
  // call — tracker internals, not per round. Compare two horizon lengths:
  // the allocation count must not grow with the round count.
  NoisyLinearMarketConfig market;
  market.feature_dim = 6;
  market.num_owners = 80;

  auto allocations_for = [&](int64_t rounds_count) {
    Rng rng(71);
    NoisyLinearQueryStream stream(market, &rng);
    EllipsoidEngineConfig config;
    config.dim = market.feature_dim;
    config.horizon = rounds_count;
    config.initial_radius = stream.RecommendedRadius();
    EllipsoidPricingEngine engine(config);
    SimulationScratch scratch;
    // Warm the scratch so the measured call starts from steady state.
    SimulationOptions warm;
    warm.rounds = 100;
    RunMarket(&stream, &engine, warm, &rng, &scratch);

    SimulationOptions options;
    options.rounds = rounds_count;
    int64_t before = ThreadAllocationCount();
    RunMarket(&stream, &engine, options, &rng, &scratch);
    return ThreadAllocationCount() - before;
  };

  int64_t short_run = allocations_for(200);
  int64_t long_run = allocations_for(2000);
  EXPECT_EQ(short_run, long_run)
      << "RunMarket allocations grew with the horizon: " << short_run << " -> "
      << long_run;
}

}  // namespace
}  // namespace pdm
