#include <gtest/gtest.h>

#include <cmath>

#include "pricing/baselines.h"

namespace pdm {
namespace {

TEST(ReservePriceBaseline, AlwaysPostsReserve) {
  ReservePriceBaseline baseline(3);
  Vector x{1.0, 0.0, 0.0};
  for (double q : {0.5, 2.0, 10.0}) {
    PostedPrice posted = baseline.PostPrice(x, q);
    EXPECT_DOUBLE_EQ(posted.price, q);
    EXPECT_FALSE(posted.exploratory);
    EXPECT_FALSE(posted.certain_no_sale);
    baseline.Observe(true);
  }
  EXPECT_EQ(baseline.counters().rounds, 3);
}

TEST(ReservePriceBaseline, EstimateIsVacuous) {
  ReservePriceBaseline baseline(2);
  ValueInterval interval = baseline.EstimateValueInterval({1.0, 0.0});
  EXPECT_TRUE(std::isinf(interval.lower));
  EXPECT_TRUE(std::isinf(interval.upper));
}

TEST(FixedPriceBaseline, PostsMaxOfFixedAndReserve) {
  FixedPriceBaseline baseline(2, 5.0);
  Vector x{1.0, 0.0};
  EXPECT_DOUBLE_EQ(baseline.PostPrice(x, 1.0).price, 5.0);
  baseline.Observe(false);
  EXPECT_DOUBLE_EQ(baseline.PostPrice(x, 7.0).price, 7.0);
  baseline.Observe(false);
}

TEST(Baselines, NamesAreStable) {
  EXPECT_EQ(ReservePriceBaseline(1).name(), "risk-averse");
  EXPECT_EQ(FixedPriceBaseline(1, 1.0).name(), "fixed-price");
}

}  // namespace
}  // namespace pdm
