// The serving layer (DESIGN.md §9): ticket lifecycle, status-based misuse
// handling, batched pricing, snapshot/restore, and the two load-bearing
// guarantees — (1) immediate-feedback broker execution is bit-identical to
// RunMarket for registry specs, and (2) any legal interleaving of ticketed
// feedback across products leaves every product's engine in exactly the
// state sequential execution produces.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "broker/driver.h"
#include "broker/session.h"
#include "broker/snapshot.h"
#include "market/round.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/engine_state.h"
#include "pricing/feature_maps.h"
#include "pricing/generalized_engine.h"
#include "pricing/interval_engine.h"
#include "pricing/link_functions.h"
#include "rng/rng.h"
#include "scenario/mechanism_registry.h"
#include "scenario/scenario_registry.h"
#include "scenario/stream_factory.h"

namespace pdm::broker {
namespace {

using scenario::MechanismRegistry;
using scenario::ScenarioRegistry;
using scenario::ScenarioSpec;
using scenario::StreamFactory;
using scenario::WorkloadInfo;

// Mirror of ExperimentDriver::Capped: shrink a registry spec to test scale
// without changing its workload identity beyond what the driver itself does.
ScenarioSpec Capped(ScenarioSpec spec, int64_t max_rounds) {
  if (max_rounds > 0 && spec.rounds > max_rounds) {
    spec.rounds = max_rounds;
    if (spec.linear.workload_rounds > 0) {
      spec.linear.workload_rounds = std::min(spec.linear.workload_rounds, spec.rounds);
    }
    if (spec.series_stride > spec.rounds) spec.series_stride = 0;
  }
  return spec;
}

/// The classic simulation path for the same spec: factory stream + registry
/// engine + RunMarket, with the runner's exact Rng lifecycle.
SimulationResult RunDirect(const ScenarioSpec& spec, StreamFactory* factory) {
  WorkloadInfo info = factory->Prepare(spec);
  std::unique_ptr<PricingEngine> engine = MechanismRegistry::Builtin().Build(spec, info);
  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory->CreateStream(spec, &rng);
  SimulationOptions options;
  options.rounds = spec.rounds;
  options.series_stride = spec.series_stride;
  return RunMarket(stream.get(), engine.get(), options, &rng);
}

ScenarioSpec LinearSpec(const std::string& name, int n, int64_t rounds,
                        const std::string& mechanism, uint64_t workload_seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.family = "brokertest";
  spec.stream = scenario::StreamKind::kLinear;
  spec.mechanism = mechanism;
  spec.n = n;
  spec.rounds = rounds;
  spec.delta = 0.01;
  spec.linear.num_owners = 200;
  spec.workload_seed = workload_seed;
  spec.sim_seed = 99;
  return spec;
}

std::unique_ptr<PricingEngine> BuildEngine(const ScenarioSpec& spec,
                                           StreamFactory* factory) {
  return MechanismRegistry::Builtin().Build(spec, factory->Prepare(spec));
}

// ------------------------------------------------------ ticket lifecycle

TEST(Broker, TicketLifecycleAndSessionInfo) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("credit/score", 8, 2000, "reserve", 11);
  Broker broker;
  ASSERT_TRUE(broker.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());

  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  MarketRound round;
  stream->Next(&rng, &round);

  Quote quote;
  ASSERT_TRUE(broker.PostPrice({spec.name, round.features, round.reserve}, &quote).ok());
  EXPECT_NE(quote.ticket, 0u);
  EXPECT_EQ(quote.status, StatusCode::kOk);

  SessionInfo info;
  ASSERT_TRUE(broker.GetSessionInfo(spec.name, &info).ok());
  EXPECT_EQ(info.pending, 1);
  EXPECT_EQ(info.quotes_issued, 1);
  EXPECT_EQ(info.feedback_received, 0);
  EXPECT_EQ(info.counters.rounds, 1);

  EXPECT_TRUE(broker.Observe(quote.ticket, true).ok());
  ASSERT_TRUE(broker.GetSessionInfo(spec.name, &info).ok());
  EXPECT_EQ(info.pending, 0);
  EXPECT_EQ(info.feedback_received, 1);

  // Duplicate feedback: the ticket was retired by its first resolution.
  Status dup = broker.Observe(quote.ticket, true);
  EXPECT_EQ(dup.code(), StatusCode::kNotFound);

  // Tickets are session-scoped: consecutive quotes get distinct ids.
  Quote second;
  stream->Next(&rng, &round);
  ASSERT_TRUE(broker.PostPrice({spec.name, round.features, round.reserve}, &second).ok());
  EXPECT_NE(second.ticket, quote.ticket);
  EXPECT_TRUE(broker.Observe(second.ticket, false).ok());
}

TEST(Broker, MisuseReturnsStatusInsteadOfAborting) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("energy/meter", 6, 2000, "reserve", 13);
  Broker broker;
  ASSERT_TRUE(broker.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());

  // Unknown product.
  std::array<double, 6> x{1, 1, 1, 1, 1, 1};
  Quote quote;
  Status status = broker.PostPrice({"no/such/product", x, 0.5}, &quote);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(quote.ticket, 0u);
  EXPECT_EQ(quote.status, StatusCode::kNotFound);

  // Dimension mismatch.
  std::array<double, 3> short_x{1, 1, 1};
  status = broker.PostPrice({spec.name, short_x, 0.5}, &quote);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(quote.ticket, 0u);
  EXPECT_NE(status.message().find("dimension mismatch"), std::string::npos);

  // Unknown ticket / malformed ticket.
  EXPECT_EQ(broker.Observe(0, true).code(), StatusCode::kNotFound);
  EXPECT_EQ(broker.Observe(uint64_t{7} << 40 | 123, true).code(), StatusCode::kNotFound);

  // Duplicate product.
  status = broker.OpenSession(spec.name, spec, factory.Prepare(spec));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  // Batch span mismatch.
  std::vector<PriceRequest> requests(2);
  std::vector<Quote> quotes(1);
  EXPECT_EQ(broker.PostPrices(requests, quotes).code(), StatusCode::kInvalidArgument);

  // Empty product / null engine at open.
  EXPECT_EQ(broker.OpenSession("", spec, factory.Prepare(spec)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broker.OpenSession("x", nullptr).code(), StatusCode::kInvalidArgument);

  // Closing makes the product and its tickets unroutable.
  ASSERT_TRUE(broker.PostPrice({spec.name, std::span<const double>(x), 0.5}, &quote).ok());
  ASSERT_TRUE(broker.CloseSession(spec.name).ok());
  EXPECT_EQ(broker.Observe(quote.ticket, true).code(), StatusCode::kNotFound);
  EXPECT_EQ(broker.CloseSession(spec.name).code(), StatusCode::kNotFound);
  EXPECT_EQ(broker.PostPrice({spec.name, x, 0.5}, &quote).code(), StatusCode::kNotFound);
}

TEST(Broker, BatchedPostPricesMatchesSingleRequests) {
  StreamFactory factory;
  ScenarioSpec spec_a = LinearSpec("batch/a", 8, 4000, "reserve", 21);
  ScenarioSpec spec_b = LinearSpec("batch/b", 8, 4000, "reserve+uncertainty", 22);

  // Reference broker priced one by one; batch broker priced through
  // PostPrices with interleaved products. Same engines, same streams.
  Broker single, batched;
  ASSERT_TRUE(single.OpenSession(spec_a.name, spec_a, factory.Prepare(spec_a)).ok());
  ASSERT_TRUE(single.OpenSession(spec_b.name, spec_b, factory.Prepare(spec_b)).ok());
  ASSERT_TRUE(batched.OpenSession(spec_a.name, spec_a, factory.Prepare(spec_a)).ok());
  ASSERT_TRUE(batched.OpenSession(spec_b.name, spec_b, factory.Prepare(spec_b)).ok());

  Rng rng_a(spec_a.sim_seed), rng_b(spec_b.sim_seed);
  std::unique_ptr<QueryStream> stream_a = factory.CreateStream(spec_a, &rng_a);
  std::unique_ptr<QueryStream> stream_b = factory.CreateStream(spec_b, &rng_b);

  constexpr int kBatches = 50;
  constexpr int kPerProduct = 4;
  std::vector<MarketRound> rounds(2 * kPerProduct);
  std::vector<PriceRequest> requests(2 * kPerProduct);
  std::vector<Quote> quotes(2 * kPerProduct);
  for (int batch = 0; batch < kBatches; ++batch) {
    for (int i = 0; i < kPerProduct; ++i) {
      stream_a->Next(&rng_a, &rounds[2 * i]);
      stream_b->Next(&rng_b, &rounds[2 * i + 1]);
      requests[2 * i] = {spec_a.name, rounds[2 * i].features, rounds[2 * i].reserve};
      requests[2 * i + 1] = {spec_b.name, rounds[2 * i + 1].features,
                             rounds[2 * i + 1].reserve};
    }
    // NB: one product sees several outstanding tickets per batch, so the
    // reference path must follow the same op order — all posts, then all
    // feedback — just through the one-at-a-time entry point.
    std::vector<Quote> reference(2 * kPerProduct);
    for (int i = 0; i < 2 * kPerProduct; ++i) {
      ASSERT_TRUE(single.PostPrice(requests[i], &reference[i]).ok());
    }
    ASSERT_TRUE(batched.PostPrices(requests, quotes).ok());
    for (int i = 0; i < 2 * kPerProduct; ++i) {
      EXPECT_EQ(quotes[i].price, reference[i].price);
      EXPECT_EQ(quotes[i].exploratory, reference[i].exploratory);
      EXPECT_EQ(quotes[i].certain_no_sale, reference[i].certain_no_sale);
      bool accepted =
          !reference[i].certain_no_sale && reference[i].price <= rounds[i].value;
      ASSERT_TRUE(single.Observe(reference[i].ticket, accepted).ok());
      ASSERT_TRUE(batched.Observe(quotes[i].ticket, accepted).ok());
    }
  }

  // Both paths left the engines in identical states.
  for (const std::string& product : {spec_a.name, spec_b.name}) {
    SessionSnapshot snap_single, snap_batched;
    ASSERT_TRUE(single.Snapshot(product, &snap_single).ok());
    ASSERT_TRUE(batched.Snapshot(product, &snap_batched).ok());
    EXPECT_EQ(EncodeSessionSnapshot(snap_single), EncodeSessionSnapshot(snap_batched))
        << product;
  }
}

TEST(Broker, BatchedSameProductRunsMatchSingleAcrossTilesAndEngines) {
  // Long same-product runs hit the session's panel path across several
  // kQuoteTile tiles (70 > 2×32), the n = 1 product routes to the interval
  // engine (no batch support — the scalar fallback inside PostPrices), and
  // the kernel product runs the generalized wrapper's skip/panel split.
  // Everything must be bit-identical to the one-at-a-time entry point,
  // tickets included.
  StreamFactory factory;
  ScenarioSpec linear = LinearSpec("tile/linear", 20, 40000, "reserve", 41);
  ScenarioSpec one_d = LinearSpec("tile/interval", 1, 40000, "reserve", 42);
  const ScenarioSpec* kernel_found =
      ScenarioRegistry::PaperExhibits().Find("kernel/m=10");
  ASSERT_NE(kernel_found, nullptr);
  ScenarioSpec kernel = Capped(*kernel_found, 40000);
  kernel.name = "tile/kernel";

  Broker single, batched;
  for (Broker* broker : {&single, &batched}) {
    ASSERT_TRUE(broker->OpenSession(linear.name, linear, factory.Prepare(linear)).ok());
    ASSERT_TRUE(broker->OpenSession(one_d.name, one_d, factory.Prepare(one_d)).ok());
    ASSERT_TRUE(broker->OpenSession(kernel.name, kernel, factory.Prepare(kernel)).ok());
  }
  struct Run {
    const std::string* product;
    int dim;
    int count;
  };
  const std::array<Run, 3> runs = {{
      {&linear.name, single.FindEngine(linear.name)->input_dim(), 70},
      {&one_d.name, single.FindEngine(one_d.name)->input_dim(), 5},
      {&kernel.name, single.FindEngine(kernel.name)->input_dim(), 9},
  }};

  Rng rng(4242);
  constexpr int kBatches = 25;
  for (int batch = 0; batch < kBatches; ++batch) {
    std::vector<Vector> features;
    std::vector<PriceRequest> requests;
    // Requests hold spans into `features`; reserve up front so push_back
    // never reallocates under them.
    features.reserve(static_cast<size_t>(runs[0].count + runs[1].count + runs[2].count));
    for (const Run& run : runs) {
      for (int i = 0; i < run.count; ++i) {
        features.push_back(rng.GaussianVector(run.dim));
        // Reserves reach high enough to trigger certain-no-sale skips (and
        // the generalized wrapper's link-range skip) inside a panel.
        requests.push_back({*run.product, features.back(), rng.NextUniform(0.0, 1.5)});
      }
    }
    std::vector<Quote> reference(requests.size());
    std::vector<Quote> quotes(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(single.PostPrice(requests[i], &reference[i]).ok());
    }
    ASSERT_TRUE(batched.PostPrices(requests, quotes).ok());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(quotes[i].ticket, reference[i].ticket) << "batch=" << batch << " i=" << i;
      ASSERT_EQ(quotes[i].price, reference[i].price) << "batch=" << batch << " i=" << i;
      ASSERT_EQ(quotes[i].exploratory, reference[i].exploratory);
      ASSERT_EQ(quotes[i].certain_no_sale, reference[i].certain_no_sale);
      bool accepted = rng.NextUniform(0.0, 1.0) < 0.5;
      ASSERT_TRUE(single.Observe(reference[i].ticket, accepted).ok());
      ASSERT_TRUE(batched.Observe(quotes[i].ticket, accepted).ok());
    }
  }

  for (const Run& run : runs) {
    SessionSnapshot snap_single, snap_batched;
    ASSERT_TRUE(single.Snapshot(*run.product, &snap_single).ok());
    ASSERT_TRUE(batched.Snapshot(*run.product, &snap_batched).ok());
    EXPECT_EQ(EncodeSessionSnapshot(snap_single), EncodeSessionSnapshot(snap_batched))
        << *run.product;
  }
}

// --------------------------------------------- bit-identity with RunMarket

TEST(BrokerDriver, ImmediateFeedbackBitIdenticalToRunMarketForFig5aAndTable1) {
  const ScenarioRegistry& registry = ScenarioRegistry::PaperExhibits();
  StreamFactory factory;
  std::vector<ScenarioSpec> specs;
  for (const ScenarioSpec& spec : registry.Match("fig5a")) {
    specs.push_back(Capped(spec, 1500));
  }
  for (const ScenarioSpec& spec : registry.Match("table1")) {
    specs.push_back(Capped(spec, 1500));
  }
  ASSERT_EQ(specs.size(), 10u);

  for (const ScenarioSpec& spec : specs) {
    SimulationResult direct = RunDirect(spec, &factory);
    BrokerRunOutcome broker = RunScenarioThroughBroker(spec, &factory);

    // Bit-identical accounting: double comparisons are exact on purpose.
    EXPECT_EQ(broker.result.tracker.cumulative_regret(),
              direct.tracker.cumulative_regret())
        << spec.name;
    EXPECT_EQ(broker.result.tracker.cumulative_revenue(),
              direct.tracker.cumulative_revenue())
        << spec.name;
    EXPECT_EQ(broker.result.tracker.cumulative_value(),
              direct.tracker.cumulative_value())
        << spec.name;
    EXPECT_EQ(broker.result.tracker.sales(), direct.tracker.sales()) << spec.name;
    EXPECT_EQ(broker.result.engine_counters.exploratory_rounds,
              direct.engine_counters.exploratory_rounds)
        << spec.name;
    EXPECT_EQ(broker.result.engine_counters.cuts_applied,
              direct.engine_counters.cuts_applied)
        << spec.name;
    EXPECT_EQ(broker.result.engine_counters.skipped_rounds,
              direct.engine_counters.skipped_rounds)
        << spec.name;
  }
}

TEST(BrokerDriver, BitIdenticalOnKernelAndOneDimensionalSpecs) {
  const ScenarioRegistry& registry = ScenarioRegistry::PaperExhibits();
  StreamFactory factory;
  for (const char* name : {"kernel/m=10", "theorem3/T=1000"}) {
    const ScenarioSpec* found = registry.Find(name);
    ASSERT_NE(found, nullptr) << name;
    ScenarioSpec spec = Capped(*found, 1000);
    SimulationResult direct = RunDirect(spec, &factory);
    BrokerRunOutcome broker = RunScenarioThroughBroker(spec, &factory);
    EXPECT_EQ(broker.result.tracker.cumulative_regret(),
              direct.tracker.cumulative_regret())
        << name;
    EXPECT_EQ(broker.result.tracker.sales(), direct.tracker.sales()) << name;
    EXPECT_EQ(broker.result.engine_counters.cuts_applied,
              direct.engine_counters.cuts_applied)
        << name;
  }
}

// --------------------------------------------- delayed / interleaved feedback

// Drives one product's rounds through `broker` with per-product alternation
// but under an external scheduler: NextOp()==true posts, false delivers the
// oldest pending feedback.
class ProductScript {
 public:
  ProductScript(ScenarioSpec spec, StreamFactory* factory, Broker* broker)
      : spec_(std::move(spec)), broker_(broker) {
    WorkloadInfo info = factory->Prepare(spec_);
    Status status = broker_->OpenSession(spec_.name, spec_, info);
    PDM_CHECK(status.ok());
    rng_ = std::make_unique<Rng>(spec_.sim_seed);
    stream_ = factory->CreateStream(spec_, rng_.get());
    stream_->BindEngine(broker_->FindEngine(spec_.name));
  }

  bool CanPost() const { return posted_ < spec_.rounds && !awaiting_feedback_; }
  bool CanObserve() const { return awaiting_feedback_; }
  bool Done() const { return posted_ == spec_.rounds && !awaiting_feedback_; }

  void Post() {
    stream_->Next(rng_.get(), &round_);
    Quote quote;
    Status status =
        broker_->PostPrice({spec_.name, round_.features, round_.reserve}, &quote);
    ASSERT_TRUE(status.ok()) << status.ToString();
    pending_ticket_ = quote.ticket;
    pending_accept_ = !quote.certain_no_sale && quote.price <= round_.value;
    awaiting_feedback_ = true;
    ++posted_;
  }

  void Observe() {
    Status status = broker_->Observe(pending_ticket_, pending_accept_);
    ASSERT_TRUE(status.ok()) << status.ToString();
    awaiting_feedback_ = false;
  }

  const std::string& product() const { return spec_.name; }

 private:
  ScenarioSpec spec_;
  Broker* broker_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<QueryStream> stream_;
  MarketRound round_;
  int64_t posted_ = 0;
  bool awaiting_feedback_ = false;
  uint64_t pending_ticket_ = 0;
  bool pending_accept_ = false;
};

TEST(Broker, AnyCrossProductInterleavingMatchesSequentialExecution) {
  constexpr int64_t kRounds = 600;
  StreamFactory factory;
  auto spec_a = LinearSpec("interleave/a", 8, kRounds, "reserve", 31);
  auto spec_b = LinearSpec("interleave/b", 10, kRounds, "reserve+uncertainty", 32);

  // Sequential reference: each product runs start-to-finish on its own.
  std::string reference_a, reference_b;
  {
    Broker broker;
    ProductScript a(spec_a, &factory, &broker);
    while (!a.Done()) {
      a.Post();
      a.Observe();
    }
    ProductScript b(spec_b, &factory, &broker);
    while (!b.Done()) {
      b.Post();
      b.Observe();
    }
    SessionSnapshot snap;
    ASSERT_TRUE(broker.Snapshot(spec_a.name, &snap).ok());
    reference_a = EncodeSessionSnapshot(snap);
    ASSERT_TRUE(broker.Snapshot(spec_b.name, &snap).ok());
    reference_b = EncodeSessionSnapshot(snap);
  }

  // Property: every random legal interleaving reproduces both reference
  // states exactly. The scheduler draws from a seeded Rng per trial.
  for (uint64_t trial = 0; trial < 8; ++trial) {
    Broker broker;
    ProductScript a(spec_a, &factory, &broker);
    ProductScript b(spec_b, &factory, &broker);
    Rng scheduler(1000 + trial);
    int cross_product_delays = 0;
    while (!a.Done() || !b.Done()) {
      // Collect the legal moves, then pick one uniformly.
      struct Move {
        ProductScript* script;
        bool post;
      };
      std::vector<Move> moves;
      if (a.CanPost()) moves.push_back({&a, true});
      if (a.CanObserve()) moves.push_back({&a, false});
      if (b.CanPost()) moves.push_back({&b, true});
      if (b.CanObserve()) moves.push_back({&b, false});
      ASSERT_FALSE(moves.empty());
      const Move& move = moves[scheduler.NextUint64() % moves.size()];
      if (move.post) {
        move.script->Post();
      } else {
        move.script->Observe();
      }
      if (a.CanObserve() && b.CanObserve()) ++cross_product_delays;
      if (HasFatalFailure()) return;
    }
    // The schedule really interleaved (both products held open tickets).
    EXPECT_GT(cross_product_delays, 0);

    SessionSnapshot snap;
    ASSERT_TRUE(broker.Snapshot(spec_a.name, &snap).ok());
    EXPECT_EQ(EncodeSessionSnapshot(snap), reference_a) << "trial " << trial;
    ASSERT_TRUE(broker.Snapshot(spec_b.name, &snap).ok());
    EXPECT_EQ(EncodeSessionSnapshot(snap), reference_b) << "trial " << trial;
  }
}

TEST(Broker, OutOfOrderFeedbackWithinAProductIsAcceptedAndDeterministic) {
  // Within one product, delayed feedback is *legal* (cuts apply in arrival
  // order with posting-time context, DESIGN.md §9); this pins that the
  // broker accepts it and that the outcome is a deterministic function of
  // the arrival order.
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("ooo/a", 8, 4000, "reserve", 41);

  auto run_with_order = [&](bool reverse) {
    Broker broker;
    PDM_CHECK(broker.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());
    Rng rng(spec.sim_seed);
    std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
    MarketRound round;
    constexpr int kWindow = 8;
    std::array<Quote, kWindow> quotes;
    std::array<bool, kWindow> accepts{};
    for (int block = 0; block < 40; ++block) {
      for (int i = 0; i < kWindow; ++i) {
        stream->Next(&rng, &round);
        Status status =
            broker.PostPrice({spec.name, round.features, round.reserve}, &quotes[i]);
        PDM_CHECK(status.ok());
        accepts[i] = !quotes[i].certain_no_sale && quotes[i].price <= round.value;
      }
      for (int i = 0; i < kWindow; ++i) {
        int j = reverse ? kWindow - 1 - i : i;
        PDM_CHECK(broker.Observe(quotes[j].ticket, accepts[j]).ok());
      }
    }
    SessionSnapshot snap;
    PDM_CHECK(broker.Snapshot(spec.name, &snap).ok());
    return EncodeSessionSnapshot(snap);
  };

  std::string in_order_1 = run_with_order(false);
  std::string in_order_2 = run_with_order(false);
  std::string reversed = run_with_order(true);
  EXPECT_EQ(in_order_1, in_order_2);  // deterministic
  // The cut sequences genuinely differ between arrival orders (the engine
  // state diverges), yet both are serviced without error.
  EXPECT_NE(in_order_1, reversed);
}

// ------------------------------------------------------- snapshot / restore

TEST(BrokerSnapshot, CodecRoundTripsByteExactly) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("snap/codec", 8, 2000, "reserve+uncertainty", 51);
  Broker broker;
  ASSERT_TRUE(broker.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());

  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  MarketRound round;
  // Leave two tickets open so the pending table is exercised.
  Quote open_a, open_b;
  for (int t = 0; t < 200; ++t) {
    stream->Next(&rng, &round);
    Quote quote;
    ASSERT_TRUE(broker.PostPrice({spec.name, round.features, round.reserve}, &quote).ok());
    if (t < 198) {
      ASSERT_TRUE(
          broker.Observe(quote.ticket, quote.price <= round.value && !quote.certain_no_sale)
              .ok());
    } else if (t == 198) {
      open_a = quote;
    } else {
      open_b = quote;
    }
  }

  SessionSnapshot snap;
  ASSERT_TRUE(broker.Snapshot(spec.name, &snap).ok());
  EXPECT_EQ(snap.pending.size(), 2u);
  EXPECT_EQ(snap.quotes_issued, 200);
  EXPECT_EQ(snap.feedback_received, 198);

  std::string bytes = EncodeSessionSnapshot(snap);
  SessionSnapshot decoded;
  Status status = DecodeSessionSnapshot(bytes, &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // Decode → encode is byte-identical (doubles travel as bit patterns).
  EXPECT_EQ(EncodeSessionSnapshot(decoded), bytes);
  EXPECT_EQ(decoded.product, spec.name);
  EXPECT_EQ(decoded.engine.engine, "ellipsoid");
  EXPECT_EQ(decoded.engine.dim, 8);
  EXPECT_EQ(decoded.pending.size(), 2u);
  EXPECT_EQ(decoded.pending[0].ticket, open_a.ticket);
  EXPECT_EQ(decoded.pending[1].ticket, open_b.ticket);

  // Corruption and truncation decode to InvalidArgument, never UB/abort.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{11}, bytes.size() / 2,
                     bytes.size() - 1}) {
    SessionSnapshot scratch;
    EXPECT_EQ(DecodeSessionSnapshot(std::string_view(bytes).substr(0, cut), &scratch)
                  .code(),
              StatusCode::kInvalidArgument)
        << cut;
  }
  std::string corrupt = bytes;
  corrupt[0] = 'X';
  SessionSnapshot scratch;
  EXPECT_EQ(DecodeSessionSnapshot(corrupt, &scratch).code(),
            StatusCode::kInvalidArgument);
}

TEST(BrokerSnapshot, RestoreResumesMidSimulationWithIdenticalPrices) {
  constexpr int64_t kTotal = 3000;
  constexpr int64_t kCheckpoint = 1100;
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("snap/resume", 10, kTotal, "reserve", 61);

  // Record the full query sequence once so both halves see identical input.
  std::vector<MarketRound> rounds(kTotal);
  factory.Prepare(spec);
  {
    Rng rng(spec.sim_seed);
    std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
    for (int64_t t = 0; t < kTotal; ++t) stream->Next(&rng, &rounds[t]);
  }

  auto drive = [&](Broker* broker, int64_t from, int64_t to,
                   std::vector<double>* prices) {
    for (int64_t t = from; t < to; ++t) {
      Quote quote;
      Status status =
          broker->PostPrice({spec.name, rounds[t].features, rounds[t].reserve}, &quote);
      PDM_CHECK(status.ok());
      PDM_CHECK(
          broker->Observe(quote.ticket,
                          !quote.certain_no_sale && quote.price <= rounds[t].value)
              .ok());
      if (prices != nullptr) prices->push_back(quote.price);
    }
  };

  // Uninterrupted run.
  std::vector<double> uninterrupted;
  std::string checkpoint_bytes;
  {
    Broker broker;
    ASSERT_TRUE(broker.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());
    drive(&broker, 0, kCheckpoint, nullptr);
    SessionSnapshot snap;
    ASSERT_TRUE(broker.Snapshot(spec.name, &snap).ok());
    checkpoint_bytes = EncodeSessionSnapshot(snap);
    drive(&broker, kCheckpoint, kTotal, &uninterrupted);
  }

  // A fresh broker + fresh engine, resumed from the serialized checkpoint —
  // the migration path. Subsequent prices must be identical bit for bit.
  std::vector<double> resumed;
  {
    Broker broker;
    ASSERT_TRUE(broker.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());
    SessionSnapshot snap;
    ASSERT_TRUE(DecodeSessionSnapshot(checkpoint_bytes, &snap).ok());
    Status status = broker.Restore(spec.name, snap);
    ASSERT_TRUE(status.ok()) << status.ToString();
    SessionInfo info;
    ASSERT_TRUE(broker.GetSessionInfo(spec.name, &info).ok());
    EXPECT_EQ(info.quotes_issued, kCheckpoint);
    EXPECT_EQ(info.counters.rounds, kCheckpoint);
    drive(&broker, kCheckpoint, kTotal, &resumed);
  }

  ASSERT_EQ(resumed.size(), uninterrupted.size());
  for (size_t i = 0; i < resumed.size(); ++i) {
    ASSERT_EQ(resumed[i], uninterrupted[i]) << "diverged at resumed round " << i;
  }
}

TEST(BrokerSnapshot, RestoreRejectsMismatchedEngine) {
  StreamFactory factory;
  ScenarioSpec spec8 = LinearSpec("mismatch/n8", 8, 1000, "reserve", 71);
  ScenarioSpec spec12 = LinearSpec("mismatch/n12", 12, 1000, "reserve", 72);
  Broker broker;
  ASSERT_TRUE(broker.OpenSession(spec8.name, spec8, factory.Prepare(spec8)).ok());
  ASSERT_TRUE(broker.OpenSession(spec12.name, spec12, factory.Prepare(spec12)).ok());

  SessionSnapshot snap;
  ASSERT_TRUE(broker.Snapshot(spec8.name, &snap).ok());
  // Same family, wrong dimension → refused, state untouched.
  EXPECT_EQ(broker.Restore(spec12.name, snap).code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------- handle fast path

TEST(BrokerHandle, ResolveAndHandlePathMatchesNamePath) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("handle/match", 8, 3000, "reserve", 101);

  Broker by_name, by_handle;
  ASSERT_TRUE(by_name.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());
  ASSERT_TRUE(by_handle.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());
  ProductHandle handle;
  ASSERT_TRUE(by_handle.Resolve(spec.name, &handle).ok());
  ASSERT_TRUE(handle.valid());

  Rng rng_a(spec.sim_seed), rng_b(spec.sim_seed);
  std::unique_ptr<QueryStream> stream_a = factory.CreateStream(spec, &rng_a);
  std::unique_ptr<QueryStream> stream_b = factory.CreateStream(spec, &rng_b);
  MarketRound round_a, round_b;
  for (int t = 0; t < 500; ++t) {
    stream_a->Next(&rng_a, &round_a);
    stream_b->Next(&rng_b, &round_b);
    Quote quote_a, quote_b;
    ASSERT_TRUE(
        by_name.PostPrice({spec.name, round_a.features, round_a.reserve}, &quote_a)
            .ok());
    ASSERT_TRUE(
        by_handle.PostPrice(handle, round_b.features, round_b.reserve, &quote_b).ok());
    ASSERT_EQ(quote_a.price, quote_b.price);
    ASSERT_EQ(quote_a.ticket, quote_b.ticket);
    bool accepted = !quote_a.certain_no_sale && quote_a.price <= round_a.value;
    ASSERT_TRUE(by_name.Observe(quote_a.ticket, accepted).ok());
    ASSERT_TRUE(by_handle.Observe(quote_b.ticket, accepted).ok());
  }

  // The diagnostic observer routes identically too.
  ValueInterval via_name, via_handle;
  ASSERT_TRUE(by_name.EstimateValue(spec.name, round_a.features, &via_name).ok());
  ASSERT_TRUE(by_handle.EstimateValue(handle, round_b.features, &via_handle).ok());
  EXPECT_EQ(via_name.lower, via_handle.lower);
  EXPECT_EQ(via_name.upper, via_handle.upper);
}

TEST(BrokerHandle, StaleHandleMisuseReturnsStatusInsteadOfAborting) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("handle/stale", 6, 2000, "reserve", 103);
  Broker broker;
  ASSERT_TRUE(broker.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());

  ProductHandle handle;
  ASSERT_TRUE(broker.Resolve(spec.name, &handle).ok());
  std::array<double, 6> x{1, 1, 1, 1, 1, 1};
  Quote quote;
  ASSERT_TRUE(broker.PostPrice(handle, x, 0.2, &quote).ok());
  ASSERT_TRUE(broker.Observe(quote.ticket, true).ok());

  // Closing kills the handle...
  ASSERT_TRUE(broker.CloseSession(spec.name).ok());
  Status stale = broker.PostPrice(handle, x, 0.2, &quote);
  EXPECT_EQ(stale.code(), StatusCode::kNotFound);
  EXPECT_EQ(quote.ticket, 0u);
  EXPECT_EQ(quote.status, StatusCode::kNotFound);
  EXPECT_EQ(broker.EstimateValue(handle, x, nullptr).code(), StatusCode::kNotFound);

  // ...and reopening the same name revives the *product* but not the old
  // handle: slots are never reused, so the stale handle stays dead forever.
  ASSERT_TRUE(broker.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());
  EXPECT_EQ(broker.PostPrice(handle, x, 0.2, &quote).code(), StatusCode::kNotFound);
  ProductHandle fresh;
  ASSERT_TRUE(broker.Resolve(spec.name, &fresh).ok());
  EXPECT_NE(fresh, handle);
  EXPECT_TRUE(broker.PostPrice(fresh, x, 0.2, &quote).ok());
  ASSERT_TRUE(broker.Observe(quote.ticket, false).ok());

  // Default-constructed and out-of-range handles are plain NotFound.
  EXPECT_EQ(broker.PostPrice(ProductHandle{}, x, 0.2, &quote).code(),
            StatusCode::kNotFound);
  ProductHandle forged;
  forged.index = 12345;
  forged.generation = 1;
  EXPECT_EQ(broker.PostPrice(forged, x, 0.2, &quote).code(), StatusCode::kNotFound);

  // Unknown product resolves to an invalid handle + NotFound.
  ProductHandle unknown;
  EXPECT_EQ(broker.Resolve("no/such/product", &unknown).code(), StatusCode::kNotFound);
  EXPECT_FALSE(unknown.valid());
}

TEST(BrokerHandle, BatchedHandleAndFeedbackPathsMatchSingleRequests) {
  StreamFactory factory;
  ScenarioSpec spec_a = LinearSpec("hbatch/a", 8, 4000, "reserve", 105);
  ScenarioSpec spec_b = LinearSpec("hbatch/b", 8, 4000, "reserve+uncertainty", 106);

  Broker single, batched;
  for (Broker* broker : {&single, &batched}) {
    ASSERT_TRUE(broker->OpenSession(spec_a.name, spec_a, factory.Prepare(spec_a)).ok());
    ASSERT_TRUE(broker->OpenSession(spec_b.name, spec_b, factory.Prepare(spec_b)).ok());
  }
  ProductHandle handle_a, handle_b;
  ASSERT_TRUE(batched.Resolve(spec_a.name, &handle_a).ok());
  ASSERT_TRUE(batched.Resolve(spec_b.name, &handle_b).ok());

  Rng rng_a(spec_a.sim_seed), rng_b(spec_b.sim_seed);
  std::unique_ptr<QueryStream> stream_a = factory.CreateStream(spec_a, &rng_a);
  std::unique_ptr<QueryStream> stream_b = factory.CreateStream(spec_b, &rng_b);

  constexpr int kBatches = 50;
  constexpr int kPerProduct = 4;
  std::vector<MarketRound> rounds(2 * kPerProduct);
  std::vector<HandleRequest> requests(2 * kPerProduct);
  std::vector<Quote> quotes(2 * kPerProduct);
  std::vector<FeedbackRequest> feedback(2 * kPerProduct);
  std::vector<StatusCode> codes(2 * kPerProduct);
  for (int batch = 0; batch < kBatches; ++batch) {
    // Interleave the two products inside one batch, so the grouped path
    // must visit non-consecutive entries per session.
    for (int i = 0; i < kPerProduct; ++i) {
      stream_a->Next(&rng_a, &rounds[2 * i]);
      stream_b->Next(&rng_b, &rounds[2 * i + 1]);
      requests[2 * i] = {handle_a, rounds[2 * i].features, rounds[2 * i].reserve};
      requests[2 * i + 1] = {handle_b, rounds[2 * i + 1].features,
                             rounds[2 * i + 1].reserve};
    }
    std::vector<Quote> reference(2 * kPerProduct);
    for (int i = 0; i < 2 * kPerProduct; ++i) {
      ASSERT_TRUE(
          single
              .PostPrice({i % 2 == 0 ? spec_a.name : spec_b.name,
                          rounds[i].features, rounds[i].reserve},
                         &reference[i])
              .ok());
    }
    ASSERT_TRUE(batched.PostPrices(std::span<const HandleRequest>(requests), quotes)
                    .ok());
    for (int i = 0; i < 2 * kPerProduct; ++i) {
      EXPECT_EQ(quotes[i].price, reference[i].price);
      EXPECT_EQ(quotes[i].ticket, reference[i].ticket);
      bool accepted =
          !reference[i].certain_no_sale && reference[i].price <= rounds[i].value;
      ASSERT_TRUE(single.Observe(reference[i].ticket, accepted).ok());
      feedback[i] = {quotes[i].ticket, accepted};
    }
    ASSERT_TRUE(batched.Observes(feedback, codes).ok());
    for (StatusCode code : codes) ASSERT_EQ(code, StatusCode::kOk);
  }

  for (const std::string& product : {spec_a.name, spec_b.name}) {
    SessionSnapshot snap_single, snap_batched;
    ASSERT_TRUE(single.Snapshot(product, &snap_single).ok());
    ASSERT_TRUE(batched.Snapshot(product, &snap_batched).ok());
    EXPECT_EQ(EncodeSessionSnapshot(snap_single), EncodeSessionSnapshot(snap_batched))
        << product;
  }

  // Per-item codes surface failures without aborting the batch: replaying
  // the last feedback batch hits only already-resolved tickets.
  Status replay = batched.Observes(feedback, codes);
  EXPECT_EQ(replay.code(), StatusCode::kNotFound);
  for (StatusCode code : codes) EXPECT_EQ(code, StatusCode::kNotFound);
}

TEST(Broker, BatchedFirstErrorIsLowestBatchPosition) {
  // The batch Status contract: groups execute in leader order, but the
  // returned Status is the failure at the lowest batch *position* — whether
  // it came from name resolution or the session level.
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("batcherr/a", 6, 2000, "reserve", 121);
  Broker broker;
  ASSERT_TRUE(broker.OpenSession(spec.name, spec, factory.Prepare(spec)).ok());

  std::array<double, 6> x{0.2, 0.4, 0.1, 0.3, 0.5, 0.2};
  std::array<double, 3> short_x{1, 1, 1};
  std::vector<Quote> quotes(2);

  // Session-level failure at position 0 beats a resolve failure at 1.
  std::vector<PriceRequest> requests = {{spec.name, short_x, 0.1},
                                        {"no/such/product", x, 0.1}};
  Status status = broker.PostPrices(requests, quotes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(quotes[0].status, StatusCode::kInvalidArgument);
  EXPECT_EQ(quotes[1].status, StatusCode::kNotFound);

  // Swapped, the resolve failure wins and keeps its product-naming message.
  requests = {{"no/such/product", x, 0.1}, {spec.name, short_x, 0.1}};
  status = broker.PostPrices(requests, quotes);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("no/such/product"), std::string::npos);
}

TEST(Broker, ConcurrentDirectoryMutationUnderLoad) {
  // The tentpole property of the snapshot directory: AddProduct/
  // RemoveProduct (control plane) racing PostPrice/Observe on *other*
  // products must never block, corrupt, or leak into them. Two stable
  // products take traffic (one via names, one via a pre-resolved handle)
  // while a mutator thread churns open/close on short-lived products and
  // occasionally quotes them. Run under TSan in CI.
  constexpr int64_t kRoundsPerWorker = 4000;
  constexpr int kChurnIterations = 250;
  StreamFactory factory;
  Broker broker;

  ScenarioSpec stable_a = LinearSpec("churn/stable-a", 6, kRoundsPerWorker, "reserve", 111);
  ScenarioSpec stable_b =
      LinearSpec("churn/stable-b", 6, kRoundsPerWorker, "reserve+uncertainty", 112);
  ScenarioSpec churn = LinearSpec("churn/ephemeral", 6, 2000, "reserve", 113);
  ASSERT_TRUE(broker.OpenSession(stable_a.name, stable_a, factory.Prepare(stable_a)).ok());
  ASSERT_TRUE(broker.OpenSession(stable_b.name, stable_b, factory.Prepare(stable_b)).ok());
  // Serial phase: the mutator reuses this info, so Prepare never races the
  // workers' CreateStream calls.
  WorkloadInfo churn_info = factory.Prepare(churn);

  auto worker = [&](const ScenarioSpec& spec, bool use_handle) {
    Rng rng(spec.sim_seed);
    std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
    ProductHandle handle;
    if (use_handle) PDM_CHECK(broker.Resolve(spec.name, &handle).ok());
    MarketRound round;
    Quote quote;
    for (int64_t t = 0; t < kRoundsPerWorker; ++t) {
      stream->Next(&rng, &round);
      Status status =
          use_handle
              ? broker.PostPrice(handle, round.features, round.reserve, &quote)
              : broker.PostPrice({spec.name, round.features, round.reserve}, &quote);
      PDM_CHECK(status.ok());
      PDM_CHECK(broker
                    .Observe(quote.ticket,
                             !quote.certain_no_sale && quote.price <= round.value)
                    .ok());
    }
  };

  std::thread thread_a(worker, stable_a, /*use_handle=*/false);
  std::thread thread_b(worker, stable_b, /*use_handle=*/true);
  std::thread mutator([&] {
    std::array<double, 6> x{0.2, 0.4, 0.1, 0.3, 0.5, 0.2};
    for (int i = 0; i < kChurnIterations; ++i) {
      PDM_CHECK(broker.OpenSession(churn.name, churn, churn_info).ok());
      ProductHandle handle;
      PDM_CHECK(broker.Resolve(churn.name, &handle).ok());
      Quote quote;
      Status status = broker.PostPrice(handle, x, 0.1, &quote);
      PDM_CHECK(status.ok());
      PDM_CHECK(broker.Observe(quote.ticket, false).ok());
      PDM_CHECK(broker.CloseSession(churn.name).ok());
      // A racer may legally see either world; what it must never see is a
      // crash, a deadlock, or traffic bleeding into another product.
      status = broker.PostPrice(handle, x, 0.1, &quote);
      PDM_CHECK(status.code() == StatusCode::kNotFound);
    }
  });
  thread_a.join();
  thread_b.join();
  mutator.join();

  SessionInfo info;
  for (const ScenarioSpec* spec : {&stable_a, &stable_b}) {
    ASSERT_TRUE(broker.GetSessionInfo(spec->name, &info).ok());
    EXPECT_EQ(info.quotes_issued, kRoundsPerWorker) << spec->name;
    EXPECT_EQ(info.feedback_received, kRoundsPerWorker) << spec->name;
    EXPECT_EQ(info.pending, 0) << spec->name;
    EXPECT_EQ(info.counters.rounds, kRoundsPerWorker) << spec->name;
  }
  // The churn product ended closed; its name is gone from the directory.
  EXPECT_EQ(broker.GetSessionInfo(churn.name, &info).code(), StatusCode::kNotFound);
  EXPECT_EQ(broker.session_count(), 2u);
}

// ------------------------------------------- batch driver (serving parity)

TEST(BrokerDriver, BatchRunThroughBrokerMatchesExperimentDriver) {
  // RunScenariosThroughBroker is the serving-side ExperimentDriver::Run:
  // same specs, one shared broker, handle fast path, bit-identical results
  // at any worker count.
  const ScenarioRegistry& registry = ScenarioRegistry::PaperExhibits();
  std::vector<ScenarioSpec> specs;
  for (const ScenarioSpec& spec : registry.Match("fig5a")) specs.push_back(spec);
  ASSERT_EQ(specs.size(), 4u);

  scenario::RunOptions options;
  options.max_rounds = 1200;
  options.num_threads = 1;
  scenario::ExperimentDriver driver(options);
  std::vector<scenario::ScenarioOutcome> direct = driver.Run(specs);
  std::vector<scenario::ScenarioOutcome> serial = RunScenariosThroughBroker(specs, options);
  options.num_threads = 4;
  std::vector<scenario::ScenarioOutcome> threaded =
      RunScenariosThroughBroker(specs, options);

  ASSERT_EQ(direct.size(), serial.size());
  ASSERT_EQ(direct.size(), threaded.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    for (const std::vector<scenario::ScenarioOutcome>* outcomes : {&serial, &threaded}) {
      const scenario::ScenarioOutcome& broker_outcome = (*outcomes)[i];
      EXPECT_EQ(broker_outcome.spec.name, direct[i].spec.name);
      EXPECT_EQ(broker_outcome.engine_name, direct[i].engine_name);
      EXPECT_EQ(broker_outcome.result.tracker.cumulative_regret(),
                direct[i].result.tracker.cumulative_regret())
          << direct[i].spec.name;
      EXPECT_EQ(broker_outcome.result.tracker.sales(), direct[i].result.tracker.sales())
          << direct[i].spec.name;
      EXPECT_EQ(broker_outcome.result.engine_counters.cuts_applied,
                direct[i].result.engine_counters.cuts_applied)
          << direct[i].spec.name;
    }
  }
}

// ---------------------------------------------------- generalized wrapper

TEST(BrokerSession, LinkRangeSkipsFlowThroughTickets) {
  // A logistic-link engine proves any reserve ≥ sup g = 1 unsellable; the
  // wrapper short-circuits before the base engine. The session must ticket
  // those rounds too (accounting stays uniform) and resolve them as no-ops.
  EllipsoidEngineConfig base;
  base.dim = 4;
  base.horizon = 1000;
  base.initial_radius = 2.0;
  auto engine = std::make_unique<GeneralizedPricingEngine>(
      std::make_unique<EllipsoidPricingEngine>(base),
      std::make_shared<LogisticLink>(0.0), std::make_shared<IdentityFeatureMap>());
  PricingSession session("ads/ctr", std::move(engine));

  std::array<double, 4> x{0.3, -0.2, 0.4, 0.1};
  Quote quote;
  ASSERT_TRUE(session.PostPrice(x, /*reserve=*/1.5, &quote).ok());
  EXPECT_TRUE(quote.certain_no_sale);
  ASSERT_TRUE(session.Observe(quote.ticket, false).ok());

  // A normal round afterwards still works and cuts.
  ASSERT_TRUE(session.PostPrice(x, /*reserve=*/0.2, &quote).ok());
  EXPECT_FALSE(quote.certain_no_sale);
  ASSERT_TRUE(session.Observe(quote.ticket, true).ok());
  EXPECT_EQ(session.engine().counters().rounds, 1);  // skip never hit the base
}

// ------------------------------------------------------------ concurrency

TEST(Broker, ConcurrentTrafficAcrossProductsIsSafeAndComplete) {
  // One product per thread plus one shared product all threads contend on;
  // run under TSan in CI. Totals must add up exactly afterwards.
  constexpr int kThreads = 4;
  constexpr int64_t kRoundsPerThread = 1500;
  StreamFactory factory;
  Broker broker;

  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < kThreads; ++i) {
    specs.push_back(
        LinearSpec("mt/own" + std::to_string(i), 6, kRoundsPerThread, "reserve", 80 + i));
    ASSERT_TRUE(broker.OpenSession(specs[i].name, specs[i], factory.Prepare(specs[i])).ok());
  }
  ScenarioSpec shared = LinearSpec("mt/shared", 6, kRoundsPerThread, "reserve", 90);
  ASSERT_TRUE(broker.OpenSession(shared.name, shared, factory.Prepare(shared)).ok());

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Rng rng(specs[i].sim_seed + i);
      std::unique_ptr<QueryStream> own_stream = factory.CreateStream(specs[i], &rng);
      std::unique_ptr<QueryStream> shared_stream = factory.CreateStream(shared, &rng);
      MarketRound round;
      Quote quote;
      for (int64_t t = 0; t < kRoundsPerThread; ++t) {
        own_stream->Next(&rng, &round);
        Status status =
            broker.PostPrice({specs[i].name, round.features, round.reserve}, &quote);
        PDM_CHECK(status.ok());
        PDM_CHECK(broker
                      .Observe(quote.ticket,
                               !quote.certain_no_sale && quote.price <= round.value)
                      .ok());
        shared_stream->Next(&rng, &round);
        status = broker.PostPrice({shared.name, round.features, round.reserve}, &quote);
        PDM_CHECK(status.ok());
        PDM_CHECK(broker
                      .Observe(quote.ticket,
                               !quote.certain_no_sale && quote.price <= round.value)
                      .ok());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  SessionInfo info;
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(broker.GetSessionInfo(specs[i].name, &info).ok());
    EXPECT_EQ(info.quotes_issued, kRoundsPerThread);
    EXPECT_EQ(info.feedback_received, kRoundsPerThread);
    EXPECT_EQ(info.pending, 0);
    EXPECT_EQ(info.counters.rounds, kRoundsPerThread);
  }
  ASSERT_TRUE(broker.GetSessionInfo(shared.name, &info).ok());
  EXPECT_EQ(info.quotes_issued, kThreads * kRoundsPerThread);
  EXPECT_EQ(info.feedback_received, kThreads * kRoundsPerThread);
  EXPECT_EQ(info.pending, 0);
}

// ---------------------------------------------------------- engine detach

TEST(EngineDetach, DetachThenObserveMatchesClassicObserve) {
  // Unit-level pin of the serving hooks: the detached path must drive the
  // knowledge set exactly like the classic alternation, engine by engine.
  Rng rng(7);
  EllipsoidEngineConfig config;
  config.dim = 5;
  config.horizon = 2000;
  config.initial_radius = 2.0;
  config.delta = 0.01;
  EllipsoidPricingEngine classic(config), detached(config);

  Vector x(5);
  PendingCut cut;
  for (int t = 0; t < 800; ++t) {
    for (double& v : x) v = rng.NextUniform(-1.0, 1.0);
    double reserve = rng.NextUniform(0.0, 0.8);
    PostedPrice a = classic.PostPrice(x, reserve);
    PostedPrice b = detached.PostPrice(x, reserve);
    ASSERT_EQ(a.price, b.price);
    bool accepted = rng.NextUniform(0.0, 1.0) < 0.5;
    classic.Observe(accepted);
    ASSERT_TRUE(detached.DetachPending(&cut));
    detached.ObserveDetached(cut, accepted);
  }
  EXPECT_EQ(classic.counters().cuts_applied, detached.counters().cuts_applied);
  EXPECT_EQ(classic.knowledge_set().center(), detached.knowledge_set().center());

  IntervalEngineConfig iconfig;
  iconfig.horizon = 2000;
  IntervalPricingEngine iclassic(iconfig), idetached(iconfig);
  Vector x1(1);
  for (int t = 0; t < 400; ++t) {
    x1[0] = rng.NextUniform(0.1, 1.0);
    double reserve = rng.NextUniform(0.0, 0.5);
    PostedPrice a = iclassic.PostPrice(x1, reserve);
    PostedPrice b = idetached.PostPrice(x1, reserve);
    ASSERT_EQ(a.price, b.price);
    bool accepted = rng.NextUniform(0.0, 1.0) < 0.5;
    iclassic.Observe(accepted);
    ASSERT_TRUE(idetached.DetachPending(&cut));
    idetached.ObserveDetached(cut, accepted);
  }
  EXPECT_EQ(iclassic.theta_lower(), idetached.theta_lower());
  EXPECT_EQ(iclassic.theta_upper(), idetached.theta_upper());
}

// ------------------------------------------ generation wrap refusal (§9)

// The ticket-slot generation saturates at kGenMask instead of wrapping: a
// slot at the bound is retired on resolution, never recycled, so a ticket
// issued 2^20 recycles ago can never alias a fresh quote (ABA). Driving a
// slot to the bound for real takes 2^20 - 1 issues, so the test
// fast-forwards through Restore — pending tickets re-enter the table with
// whatever generation their id encodes.
TEST(BrokerSession, GenerationSaturatesAndRetiresSlotInsteadOfWrapping) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("wrap/session", 4, 100, "reserve", 77);
  PricingSession session("wrap/session", BuildEngine(spec, &factory));

  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  MarketRound round;
  stream->Next(&rng, &round);

  // One real quote gives the snapshot a genuine pending cut.
  Quote quote;
  ASSERT_TRUE(session.PostPrice(round.features, round.reserve, &quote).ok());
  SessionSnapshot snap;
  ASSERT_TRUE(session.Snapshot(&snap).ok());
  ASSERT_EQ(snap.pending.size(), 1u);

  // Fast-forward: re-enter the table one issue below the generation bound.
  const uint64_t kGenMask = PricingSession::kGenMask;
  uint64_t near_bound = (snap.pending[0].ticket & ~kGenMask) | (kGenMask - 1);
  snap.pending[0].ticket = near_bound;
  ASSERT_TRUE(session.Restore(snap).ok());
  EXPECT_EQ(session.retired_ticket_slots(), 0);

  // Resolving the near-bound ticket recycles the slot one last time...
  ASSERT_TRUE(session.Observe(near_bound, true).ok());
  stream->Next(&rng, &round);
  ASSERT_TRUE(session.PostPrice(round.features, round.reserve, &quote).ok());
  uint64_t at_bound = quote.ticket;
  // ...and the bump saturates exactly at the bound (same slot, generation
  // kGenMask) — it must NOT wrap to a small generation a stale ticket
  // could still carry.
  EXPECT_EQ(at_bound & kGenMask, kGenMask);
  EXPECT_EQ(at_bound >> PricingSession::kGenBits,
            near_bound >> PricingSession::kGenBits);

  // Resolution at the bound retires the slot permanently.
  ASSERT_TRUE(session.Observe(at_bound, false).ok());
  EXPECT_EQ(session.retired_ticket_slots(), 1);
  EXPECT_EQ(session.Observe(at_bound, true).code(), StatusCode::kNotFound);

  // The next quote comes from a FRESH slot, never the retired one.
  stream->Next(&rng, &round);
  ASSERT_TRUE(session.PostPrice(round.features, round.reserve, &quote).ok());
  EXPECT_NE((quote.ticket >> PricingSession::kGenBits) & PricingSession::kSlotMask,
            (at_bound >> PricingSession::kGenBits) & PricingSession::kSlotMask);
  EXPECT_EQ(quote.ticket & kGenMask, 1u);  // fresh slot, first generation
  ASSERT_TRUE(session.Observe(quote.ticket, true).ok());
  EXPECT_EQ(session.retired_ticket_slots(), 1);
  EXPECT_EQ(session.pending_count(), 0);
}

// A ticket restored already AT the bound resolves normally once and its
// slot retires immediately — the session keeps serving from other slots.
TEST(BrokerSession, TicketRestoredAtGenerationBoundRetiresOnResolution) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("wrap/at-bound", 4, 100, "reserve", 78);
  PricingSession session("wrap/at-bound", BuildEngine(spec, &factory));

  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  MarketRound round;
  stream->Next(&rng, &round);
  Quote quote;
  ASSERT_TRUE(session.PostPrice(round.features, round.reserve, &quote).ok());
  SessionSnapshot snap;
  ASSERT_TRUE(session.Snapshot(&snap).ok());
  ASSERT_EQ(snap.pending.size(), 1u);

  const uint64_t kGenMask = PricingSession::kGenMask;
  uint64_t at_bound = (snap.pending[0].ticket & ~kGenMask) | kGenMask;
  snap.pending[0].ticket = at_bound;
  ASSERT_TRUE(session.Restore(snap).ok());

  ASSERT_TRUE(session.Observe(at_bound, true).ok());
  EXPECT_EQ(session.retired_ticket_slots(), 1);

  // Serving continues on fresh slots; the engine state is unharmed.
  stream->Next(&rng, &round);
  ASSERT_TRUE(session.PostPrice(round.features, round.reserve, &quote).ok());
  EXPECT_NE((quote.ticket >> PricingSession::kGenBits) & PricingSession::kSlotMask,
            (at_bound >> PricingSession::kGenBits) & PricingSession::kSlotMask);
  ValueInterval interval;
  EXPECT_TRUE(session.EstimateValue(round.features, &interval).ok());
  ASSERT_TRUE(session.Observe(quote.ticket, false).ok());
  EXPECT_EQ(session.pending_count(), 0);
}

// ------------------------------------------------------ cold tier

/// Fresh spill directory for one test (wiped so reruns start clean).
std::string ColdDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/pdm_cold_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Broker, BatchedOpenIsAtomicAndServesEveryProduct) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("batch/base", 6, 2000, "reserve", 31);
  WorkloadInfo info = factory.Prepare(spec);
  Broker broker;

  // Validation failures open nothing.
  std::vector<std::string> dup{"batch/a", "batch/b", "batch/a"};
  EXPECT_EQ(broker.OpenSessions(dup, spec, info).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(broker.session_count(), 0u);
  std::vector<std::string> with_empty{"batch/a", ""};
  EXPECT_EQ(broker.OpenSessions(with_empty, spec, info).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broker.session_count(), 0u);

  std::vector<std::string> names;
  for (int i = 0; i < 16; ++i) names.push_back("batch/p" + std::to_string(i));
  ASSERT_TRUE(broker.OpenSessions(names, spec, info).ok());
  EXPECT_EQ(broker.session_count(), names.size());

  // A batch-opened product collides with later opens like any other.
  EXPECT_EQ(broker.OpenSession("batch/p3", spec, info).code(),
            StatusCode::kFailedPrecondition);

  // Every product serves, and its batch-assigned ticket base routes feedback.
  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  MarketRound round;
  for (const std::string& name : names) {
    stream->Next(&rng, &round);
    Quote quote;
    ASSERT_TRUE(broker.PostPrice({name, round.features, round.reserve}, &quote).ok());
    EXPECT_TRUE(broker.Observe(quote.ticket, true).ok());
  }
  BrokerStats stats = broker.Stats();
  EXPECT_EQ(stats.open_sessions, names.size());
  EXPECT_EQ(stats.resident_sessions, names.size());
  EXPECT_EQ(stats.slab_live_slots, names.size());
  EXPECT_EQ(stats.slab_tombstoned_slots, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(BrokerColdTier, RandomizedEvictFaultInMatchesNeverEvictedTwinBitwise) {
  // The load-bearing cold-tier pin: a broker that randomly evicts and
  // faults sessions back in must be BIT-identical — every quote, every
  // snapshot byte — to a twin broker that never evicts, including while
  // quotes are outstanding across an eviction.
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("cold/base", 8, 4000, "reserve+uncertainty", 21);
  WorkloadInfo info = factory.Prepare(spec);
  constexpr int kProducts = 6;
  std::vector<std::string> names;
  for (int i = 0; i < kProducts; ++i) names.push_back("cold/p" + std::to_string(i));

  BrokerConfig cold_config;
  cold_config.spill_dir = ColdDir("twin");
  Broker cold(cold_config);
  Broker hot;  // no spill_dir: the never-evicted twin
  ASSERT_TRUE(cold.OpenSessions(names, spec, info).ok());
  for (const std::string& name : names) {
    ASSERT_TRUE(hot.OpenSession(name, spec, info).ok());
  }

  // One shared query source so both brokers see identical rounds.
  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  MarketRound round;
  Rng control(20240808);
  // Tickets deliberately held pending across evictions, resolved later.
  std::vector<std::pair<uint64_t, uint64_t>> held;  // (cold ticket, hot ticket)

  for (int step = 0; step < 600; ++step) {
    int p = static_cast<int>(control.NextUint64(kProducts));
    stream->Next(&rng, &round);
    Quote cold_quote;
    Quote hot_quote;
    ASSERT_TRUE(
        cold.PostPrice({names[p], round.features, round.reserve}, &cold_quote).ok());
    ASSERT_TRUE(
        hot.PostPrice({names[p], round.features, round.reserve}, &hot_quote).ok());
    ASSERT_EQ(cold_quote.ticket, hot_quote.ticket) << "step " << step;
    ASSERT_EQ(cold_quote.price, hot_quote.price) << "step " << step;
    ASSERT_EQ(cold_quote.certain_no_sale, hot_quote.certain_no_sale);
    bool accepted = (control.NextUint64(3) != 0);
    if (control.NextUint64(4) == 0 && held.size() < 32) {
      held.emplace_back(cold_quote.ticket, hot_quote.ticket);
    } else {
      ASSERT_EQ(cold.Observe(cold_quote.ticket, accepted).code(),
                hot.Observe(hot_quote.ticket, accepted).code());
    }
    if (control.NextUint64(10) == 0) {
      // Evict down to a random residency target; the twin never evicts.
      cold.EvictIdleSessions(control.NextUint64(kProducts));
    }
    if (control.NextUint64(8) == 0 && !held.empty()) {
      size_t h = control.NextUint64(held.size());
      bool late_accept = (control.NextUint64(2) == 0);
      ASSERT_EQ(cold.Observe(held[h].first, late_accept).code(),
                hot.Observe(held[h].second, late_accept).code());
      held.erase(held.begin() + static_cast<ptrdiff_t>(h));
    }
    if (step % 100 == 99) {
      // Mid-run snapshots must agree byte for byte — even for products
      // currently sitting in the cold tier (Snapshot faults them in).
      for (const std::string& name : names) {
        SessionSnapshot cold_snap;
        SessionSnapshot hot_snap;
        ASSERT_TRUE(cold.Snapshot(name, &cold_snap).ok());
        ASSERT_TRUE(hot.Snapshot(name, &hot_snap).ok());
        ASSERT_EQ(EncodeSessionSnapshot(cold_snap), EncodeSessionSnapshot(hot_snap))
            << name << " at step " << step;
      }
    }
  }
  BrokerStats stats = cold.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.fault_ins, 0u);
  // Drain the held tickets; both brokers end balanced.
  for (const auto& [cold_ticket, hot_ticket] : held) {
    ASSERT_EQ(cold.Observe(cold_ticket, true).code(),
              hot.Observe(hot_ticket, true).code());
  }
  for (const std::string& name : names) {
    SessionInfo cold_info;
    SessionInfo hot_info;
    ASSERT_TRUE(cold.GetSessionInfo(name, &cold_info).ok());
    ASSERT_TRUE(hot.GetSessionInfo(name, &hot_info).ok());
    EXPECT_EQ(cold_info.pending, 0);
    EXPECT_EQ(cold_info.quotes_issued, hot_info.quotes_issued);
    EXPECT_EQ(cold_info.feedback_received, hot_info.feedback_received);
  }
}

TEST(BrokerColdTier, ResidencyLimitEvictsAutomaticallyAndStatsTrackIt) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("cap/base", 6, 2000, "reserve", 41);
  WorkloadInfo info = factory.Prepare(spec);
  constexpr size_t kProducts = 12;
  constexpr size_t kCap = 4;
  BrokerConfig config;
  config.spill_dir = ColdDir("cap");
  config.max_resident_sessions = kCap;
  Broker broker(config);
  std::vector<std::string> names;
  for (size_t i = 0; i < kProducts; ++i) names.push_back("cap/p" + std::to_string(i));
  ASSERT_TRUE(broker.OpenSessions(names, spec, info).ok());

  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  MarketRound round;
  // Round-robin touches force every product through evict → fault-in cycles.
  for (int pass = 0; pass < 4; ++pass) {
    for (const std::string& name : names) {
      stream->Next(&rng, &round);
      Quote quote;
      ASSERT_TRUE(broker.PostPrice({name, round.features, round.reserve}, &quote).ok());
      ASSERT_TRUE(broker.Observe(quote.ticket, true).ok());
    }
  }
  BrokerStats stats = broker.Stats();
  EXPECT_EQ(stats.open_sessions, kProducts);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.fault_ins, 0u);
  // The cap is a soft target enforced at request entry; after a full pass
  // the resident set sits at the cap plus at most the products touched
  // since the last sweep.
  EXPECT_LE(stats.resident_sessions, kProducts);
  EXPECT_EQ(stats.resident_sessions + stats.evicted_sessions, kProducts);
  EXPECT_GT(stats.evicted_sessions, 0u);
  EXPECT_GT(stats.spill_bytes, 0u);
  EXPECT_GT(stats.arena_bytes_used, 0u);

  // EstimateValue and GetSessionInfo also fault in transparently.
  stream->Next(&rng, &round);
  for (const std::string& name : names) {
    ValueInterval interval;
    EXPECT_TRUE(broker.EstimateValue(name, round.features, &interval).ok());
  }
}

TEST(BrokerColdTier, CloseWhileEvictedDropsSpillFileWithoutFaultIn) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("closecold/base", 6, 2000, "reserve", 51);
  WorkloadInfo info = factory.Prepare(spec);
  BrokerConfig config;
  config.spill_dir = ColdDir("closecold");
  Broker broker(config);
  std::vector<std::string> names{"closecold/a", "closecold/b"};
  ASSERT_TRUE(broker.OpenSessions(names, spec, info).ok());
  ASSERT_EQ(broker.EvictIdleSessions(0), 2u);
  BrokerStats stats = broker.Stats();
  EXPECT_EQ(stats.evicted_sessions, 2u);
  EXPECT_EQ(stats.resident_sessions, 0u);
  uint64_t fault_ins_before = stats.fault_ins;

  ASSERT_TRUE(broker.CloseSession("closecold/a").ok());
  stats = broker.Stats();
  EXPECT_EQ(stats.open_sessions, 1u);
  EXPECT_EQ(stats.evicted_sessions, 1u);
  EXPECT_EQ(stats.slab_tombstoned_slots, 1u);
  EXPECT_EQ(stats.fault_ins, fault_ins_before);  // close never faults in
  // Exactly one spill file remains (the still-evicted product's).
  size_t spill_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(config.spill_dir)) {
    (void)entry;
    ++spill_files;
  }
  EXPECT_EQ(spill_files, 1u);
  // The closed product is gone for good; the surviving one faults in fine.
  Quote quote;
  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  MarketRound round;
  stream->Next(&rng, &round);
  EXPECT_EQ(
      broker.PostPrice({"closecold/a", round.features, round.reserve}, &quote).code(),
      StatusCode::kNotFound);
  EXPECT_TRUE(
      broker.PostPrice({"closecold/b", round.features, round.reserve}, &quote).ok());
}

TEST(BrokerColdTier, CallerBuiltEnginesAreNeverEvicted) {
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("pinned/base", 6, 2000, "reserve", 61);
  WorkloadInfo info = factory.Prepare(spec);
  BrokerConfig config;
  config.spill_dir = ColdDir("pinned");
  Broker broker(config);
  // A caller-built engine has no rebuild recipe → not evictable.
  ASSERT_TRUE(broker.OpenSession("pinned/custom", BuildEngine(spec, &factory)).ok());
  ASSERT_TRUE(broker.OpenSession("pinned/registry", spec, info).ok());
  EXPECT_EQ(broker.EvictIdleSessions(0), 1u);
  BrokerStats stats = broker.Stats();
  EXPECT_EQ(stats.resident_sessions, 1u);
  EXPECT_EQ(stats.evicted_sessions, 1u);
}

}  // namespace
}  // namespace pdm::broker
