// Fault-tolerance suite (DESIGN.md §14): the deterministic fault injector,
// the checksummed pdm.snap.v2 spill envelope, crash-consistent spill
// durability (quarantine, startup recovery, orphan sweeps), server overload
// shedding and idle reaping, and client deadline/retry semantics. The
// process-kill drill itself lives in CI (tools/check_recovery.py); this file
// pins every failure-path contract the drill relies on.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "broker/session.h"
#include "broker/snapshot.h"
#include "common/fault.h"
#include "common/status.h"
#include "metrics/metrics.h"
#include "scenario/scenario_registry.h"
#include "scenario/stream_factory.h"
#include "server/client.h"
#include "server/net.h"
#include "server/server.h"
#include "server/wire.h"

namespace pdm::broker {
namespace {

using fault::FaultInjector;
using scenario::ScenarioSpec;
using scenario::StreamFactory;
using scenario::WorkloadInfo;

/// Every test touching the process-global injector scopes itself with this
/// guard: a leaked armed site would inject faults into unrelated tests.
struct FaultGuard {
  FaultGuard() { FaultInjector::Global().Reset(); }
  ~FaultGuard() { FaultInjector::Global().Reset(); }
};

ScenarioSpec LinearSpec(const std::string& name, int n, int64_t rounds,
                        const std::string& mechanism, uint64_t workload_seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.family = "chaostest";
  spec.stream = scenario::StreamKind::kLinear;
  spec.mechanism = mechanism;
  spec.n = n;
  spec.rounds = rounds;
  spec.delta = 0.01;
  spec.linear.num_owners = 200;
  spec.workload_seed = workload_seed;
  spec.sim_seed = 99;
  return spec;
}

/// Fresh spill directory for one test (wiped so reruns start clean).
std::string ChaosDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/pdm_chaos_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Drives `rounds` priced rounds with immediate feedback on one product.
void DriveRounds(Broker* broker, StreamFactory* factory, const ScenarioSpec& spec,
                 const std::string& product, int rounds) {
  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory->CreateStream(spec, &rng);
  MarketRound round;
  for (int i = 0; i < rounds; ++i) {
    stream->Next(&rng, &round);
    Quote quote;
    ASSERT_TRUE(
        broker->PostPrice({product, round.features, round.reserve}, &quote).ok());
    ASSERT_TRUE(broker->Observe(quote.ticket, quote.price <= round.value).ok());
  }
}

// --------------------------------------------------- fault injector

TEST(FaultInjectorTest, DisarmedIsInertAndArmingFires) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  inj.SetProbability("chaos.site", 1.0);
  EXPECT_FALSE(fault::ShouldFail("chaos.site"));  // disarmed: never fires
  EXPECT_EQ(inj.fires("chaos.site"), 0u);

  inj.Arm(7);
  EXPECT_TRUE(fault::ShouldFail("chaos.site"));
  EXPECT_TRUE(fault::ShouldFail("chaos.site"));
  EXPECT_EQ(inj.hits("chaos.site"), 2u);
  EXPECT_EQ(inj.fires("chaos.site"), 2u);
  EXPECT_FALSE(fault::ShouldFail("chaos.other"));  // unconfigured site misses

  inj.Disarm();
  EXPECT_FALSE(fault::ShouldFail("chaos.site"));
  inj.Reset();
  EXPECT_EQ(inj.hits("chaos.site"), 0u);
}

TEST(FaultInjectorTest, ScriptedTriggersFireOnExactHits) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  inj.TriggerOnHit("chaos.step", 2);
  inj.TriggerOnHit("chaos.step", 4);
  inj.Arm(1);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(fault::ShouldFail("chaos.step"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, false}));
  EXPECT_EQ(inj.hits("chaos.step"), 6u);
  EXPECT_EQ(inj.fires("chaos.step"), 2u);
}

TEST(FaultInjectorTest, SeededProbabilityStreamIsReproducible) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  auto run = [&] {
    inj.Reset();
    inj.SetProbability("chaos.coin", 0.5);
    inj.Arm(42);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(fault::ShouldFail("chaos.coin"));
    return pattern;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // A fair-ish coin: both outcomes appear (the stream is not stuck).
  EXPECT_GT(std::count(first.begin(), first.end(), true), 0);
  EXPECT_GT(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultInjectorTest, ConfigureParsesSpecAndRejectsMalformed) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("seed=7,chaos.cfg=1.0,chaos.nth@3").ok());
  EXPECT_EQ(inj.Configure("chaos.cfg=not-a-number").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(inj.Configure("chaos.cfg=1.5").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(inj.Configure("chaos.nth@zero").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(inj.Configure("=0.5").code(), StatusCode::kInvalidArgument);
  // The rejected specs left the original configuration intact.
  inj.Arm();
  EXPECT_TRUE(fault::ShouldFail("chaos.cfg"));
  EXPECT_FALSE(fault::ShouldFail("chaos.nth"));
  EXPECT_FALSE(fault::ShouldFail("chaos.nth"));
  EXPECT_TRUE(fault::ShouldFail("chaos.nth"));  // third hit
}

// ------------------------------------------------- pdm.snap.v2 envelope

class SnapV2Test : public testing::Test {
 protected:
  /// A realistic snapshot: engine knowledge, counters, pending tickets.
  SessionSnapshot MakeSnapshot() {
    StreamFactory factory;
    ScenarioSpec spec = LinearSpec("chaos/snap", 6, 500, "reserve", 11);
    Broker broker;
    auto open = broker.OpenSession(spec.name, spec, factory.Prepare(spec));
    PDM_CHECK(open.ok());
    Rng rng(spec.sim_seed);
    std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
    MarketRound round;
    for (int i = 0; i < 40; ++i) {
      stream->Next(&rng, &round);
      Quote quote;
      PDM_CHECK(broker.PostPrice({spec.name, round.features, round.reserve}, &quote)
                    .ok());
      if (i % 3 != 0) PDM_CHECK(broker.Observe(quote.ticket, i % 2 == 0).ok());
    }
    SessionSnapshot snap;
    PDM_CHECK(broker.Snapshot(spec.name, &snap).ok());
    return snap;
  }
};

TEST_F(SnapV2Test, RoundTripsAndStillDecodesLegacyV1) {
  SessionSnapshot snap = MakeSnapshot();
  const std::string v1 = EncodeSessionSnapshot(snap);
  const std::string v2 = EncodeSessionSnapshotV2(snap);
  ASSERT_EQ(v2.substr(0, 8), "PDMSNAP2");
  EXPECT_EQ(v2.size(), v1.size() + 20);  // magic+version+size header, CRC trailer

  SessionSnapshot from_v2, from_v1;
  ASSERT_TRUE(DecodeSessionSnapshot(v2, &from_v2).ok());
  ASSERT_TRUE(DecodeSessionSnapshot(v1, &from_v1).ok());
  // Decode → re-encode is byte-identical through both paths.
  EXPECT_EQ(EncodeSessionSnapshot(from_v2), v1);
  EXPECT_EQ(EncodeSessionSnapshot(from_v1), v1);
  EXPECT_EQ(from_v2.pending.size(), snap.pending.size());
}

TEST_F(SnapV2Test, EveryTruncationPointRejectsWithoutCrashing) {
  const std::string v2 = EncodeSessionSnapshotV2(MakeSnapshot());
  for (size_t cut = 0; cut < v2.size(); ++cut) {
    SessionSnapshot out;
    Status s = DecodeSessionSnapshot(std::string_view(v2).substr(0, cut), &out);
    ASSERT_FALSE(s.ok()) << "decoded a " << cut << "-byte truncation";
    if (cut >= 8) {
      // Magic intact: the envelope itself reports the damage as DataLoss.
      EXPECT_EQ(s.code(), StatusCode::kDataLoss) << "cut at " << cut;
    }
  }
}

TEST_F(SnapV2Test, EveryFlippedByteRejects) {
  const std::string v2 = EncodeSessionSnapshotV2(MakeSnapshot());
  for (size_t at = 0; at < v2.size(); ++at) {
    std::string damaged = v2;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x40);
    SessionSnapshot out;
    Status s = DecodeSessionSnapshot(damaged, &out);
    ASSERT_FALSE(s.ok()) << "decoded with byte " << at << " flipped";
    if (at >= 12) {
      // Size, body, or CRC damage → DataLoss (bytes 0..7 fall back to the
      // v1 parser's InvalidArgument; 8..11 is an unsupported version).
      EXPECT_EQ(s.code(), StatusCode::kDataLoss) << "flip at " << at;
    }
  }
}

// --------------------------------------------- spill durability + recovery

TEST(BrokerChaosTest, EvictionSpillsV2AndCorruptionQuarantinesWithDataLoss) {
  FaultGuard guard;
  StreamFactory factory;
  metrics::MetricRegistry registry;
  ScenarioSpec spec = LinearSpec("chaos/corrupt", 6, 2000, "reserve", 21);
  WorkloadInfo info = factory.Prepare(spec);
  BrokerConfig config;
  config.spill_dir = ChaosDir("corrupt");
  config.metrics = &registry;
  Broker broker(config);
  ASSERT_TRUE(broker.OpenSession("chaos/p0", spec, info).ok());
  ASSERT_TRUE(broker.OpenSession("chaos/p1", spec, info).ok());
  DriveRounds(&broker, &factory, spec, "chaos/p0", 20);
  DriveRounds(&broker, &factory, spec, "chaos/p1", 20);

  ASSERT_EQ(broker.EvictIdleSessions(0), 2u);
  const std::string spill0 = config.spill_dir + "/slot-0.snap";
  std::string bytes = ReadFileBytes(spill0);
  ASSERT_EQ(bytes.substr(0, 8), "PDMSNAP2");  // spills are enveloped

  // Corrupt one body byte on disk. The next touch must fail DataLoss and
  // quarantine the file — never serve a silently wrong price.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  WriteFileBytes(spill0, bytes);

  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  MarketRound round;
  stream->Next(&rng, &round);
  Quote quote;
  Status touched =
      broker.PostPrice({"chaos/p0", round.features, round.reserve}, &quote);
  EXPECT_EQ(touched.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(std::filesystem::exists(spill0));
  EXPECT_TRUE(std::filesystem::exists(spill0 + ".quarantined"));
  EXPECT_EQ(registry.GetCounter("pdm_broker_spill_corruptions_total", "").value(),
            1u);
  EXPECT_EQ(broker.Stats().quarantined_sessions, 1u);

  // The quarantined session keeps answering DataLoss (no retry loop into the
  // bad file), snapshot/restore refuse too, and close is clean.
  SessionSnapshot snap;
  EXPECT_EQ(broker.Snapshot("chaos/p0", &snap).code(), StatusCode::kDataLoss);
  EXPECT_EQ(broker
                .PostPrice({"chaos/p0", round.features, round.reserve}, &quote)
                .code(),
            StatusCode::kDataLoss);
  EXPECT_TRUE(broker.CloseSession("chaos/p0").ok());

  // The sibling session is unharmed and faults back in.
  EXPECT_TRUE(
      broker.PostPrice({"chaos/p1", round.features, round.reserve}, &quote).ok());
}

TEST(BrokerChaosTest, MissingSpillSurfacesDataLoss) {
  FaultGuard guard;
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("chaos/missing", 6, 2000, "reserve", 23);
  BrokerConfig config;
  config.spill_dir = ChaosDir("missing");
  Broker broker(config);
  ASSERT_TRUE(broker.OpenSession("chaos/gone", spec, factory.Prepare(spec)).ok());
  DriveRounds(&broker, &factory, spec, "chaos/gone", 10);
  ASSERT_EQ(broker.EvictIdleSessions(0), 1u);
  std::filesystem::remove(config.spill_dir + "/slot-0.snap");

  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  MarketRound round;
  stream->Next(&rng, &round);
  Quote quote;
  EXPECT_EQ(
      broker.PostPrice({"chaos/gone", round.features, round.reserve}, &quote).code(),
      StatusCode::kDataLoss);
  EXPECT_TRUE(broker.CloseSession("chaos/gone").ok());
}

TEST(BrokerChaosTest, InjectedSpillWriteFailureKeepsSessionResident) {
  FaultGuard guard;
  StreamFactory factory;
  metrics::MetricRegistry registry;
  ScenarioSpec spec = LinearSpec("chaos/wfail", 6, 2000, "reserve", 25);
  BrokerConfig config;
  config.spill_dir = ChaosDir("wfail");
  config.metrics = &registry;
  Broker broker(config);
  ASSERT_TRUE(broker.OpenSession("chaos/w0", spec, factory.Prepare(spec)).ok());
  DriveRounds(&broker, &factory, spec, "chaos/w0", 10);

  FaultInjector::Global().TriggerOnHit("spill.write", 1);
  FaultInjector::Global().Arm(3);
  EXPECT_EQ(broker.EvictIdleSessions(0), 0u);  // write failed → not evicted
  EXPECT_EQ(registry.GetCounter("pdm_broker_spill_write_errors_total", "").value(),
            1u);
  EXPECT_EQ(broker.Stats().resident_sessions, 1u);

  // The session still serves, and a later (fault-free) eviction succeeds.
  FaultInjector::Global().Disarm();
  DriveRounds(&broker, &factory, spec, "chaos/w0", 5);
  EXPECT_EQ(broker.EvictIdleSessions(0), 1u);
  DriveRounds(&broker, &factory, spec, "chaos/w0", 5);  // faults back in
}

TEST(BrokerChaosTest, StartupSweepAdoptsByNameQuarantinesCorruptReclaimsOrphans) {
  FaultGuard guard;
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("chaos/recover", 6, 2000, "reserve", 27);
  WorkloadInfo info = factory.Prepare(spec);
  const std::string dir = ChaosDir("recover");

  // Build the pre-crash state with a donor broker: price some rounds, leave
  // tickets pending, and capture the exact spill bytes eviction wrote.
  std::string spill_bytes;
  std::string expected_v1;
  {
    BrokerConfig donor_config;
    donor_config.spill_dir = ChaosDir("recover_donor");
    Broker donor(donor_config);
    ASSERT_TRUE(donor.OpenSession("chaos/adopted", spec, info).ok());
    DriveRounds(&donor, &factory, spec, "chaos/adopted", 25);
    SessionSnapshot snap;
    ASSERT_TRUE(donor.Snapshot("chaos/adopted", &snap).ok());
    expected_v1 = EncodeSessionSnapshot(snap);
    ASSERT_EQ(donor.EvictIdleSessions(0), 1u);
    spill_bytes = ReadFileBytes(donor_config.spill_dir + "/slot-0.snap");
    ASSERT_FALSE(spill_bytes.empty());
  }

  // Fake the crashed broker's directory: a valid spill, a torn .tmp, a
  // corrupt spill, and a valid-but-unclaimed spill from some other fleet.
  std::filesystem::create_directories(dir);
  WriteFileBytes(dir + "/slot-4.snap", spill_bytes);
  WriteFileBytes(dir + "/slot-9.snap.tmp", "torn half-write");
  std::string corrupt = spill_bytes;
  corrupt[corrupt.size() - 1] = static_cast<char>(corrupt[corrupt.size() - 1] ^ 0xFF);
  WriteFileBytes(dir + "/slot-7.snap", corrupt);

  BrokerConfig config;
  config.spill_dir = dir;
  Broker broker(config);
  RecoveryReport report = broker.recovery_report();
  EXPECT_EQ(report.tmp_reclaimed, 1u);
  EXPECT_EQ(report.spills_found, 1u);
  EXPECT_EQ(report.corrupt_quarantined, 1u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/slot-9.snap.tmp"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/slot-7.snap.quarantined"));

  // Opening the matching product adopts the spill: the session starts
  // evicted and faults in to *exactly* the pre-crash state.
  ASSERT_TRUE(broker.OpenSession("chaos/adopted", spec, info).ok());
  EXPECT_EQ(broker.recovery_report().adopted, 1u);
  EXPECT_EQ(broker.Stats().evicted_sessions, 1u);
  SessionSnapshot recovered;
  ASSERT_TRUE(broker.Snapshot("chaos/adopted", &recovered).ok());
  EXPECT_EQ(EncodeSessionSnapshot(recovered), expected_v1);

  // Nothing else claims spills in this test, so the sweep finds none left;
  // an unclaimed spill added later is reclaimed (the leak fix).
  EXPECT_EQ(broker.SweepUnclaimedSpills(), 0u);
}

// The restart open order need not match the pre-crash slot layout. The sweep
// moves inventoried spills into the disjoint `recovered-*.snap` namespace, so
// adopting product B into what used to be A's slot index can never rename
// over A's still-unclaimed bytes (the bug: A then silently served B's state
// while B's slot was quarantined as DataLoss).
TEST(BrokerChaosTest, AdoptionSurvivesReversedRestartOpenOrder) {
  FaultGuard guard;
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("chaos/reorder", 6, 2000, "reserve", 31);
  WorkloadInfo info = factory.Prepare(spec);
  const std::string dir = ChaosDir("reorder");

  // Pre-crash layout: A at slot 0, B at slot 1, with distinct states.
  std::string expected_a, expected_b;
  {
    BrokerConfig donor_config;
    donor_config.spill_dir = ChaosDir("reorder_donor");
    Broker donor(donor_config);
    ASSERT_TRUE(donor.OpenSession("chaos/a", spec, info).ok());
    ASSERT_TRUE(donor.OpenSession("chaos/b", spec, info).ok());
    DriveRounds(&donor, &factory, spec, "chaos/a", 25);
    DriveRounds(&donor, &factory, spec, "chaos/b", 10);
    SessionSnapshot snap;
    ASSERT_TRUE(donor.Snapshot("chaos/a", &snap).ok());
    expected_a = EncodeSessionSnapshot(snap);
    ASSERT_TRUE(donor.Snapshot("chaos/b", &snap).ok());
    expected_b = EncodeSessionSnapshot(snap);
    ASSERT_NE(expected_a, expected_b);
    ASSERT_EQ(donor.EvictIdleSessions(0), 2u);
    std::filesystem::create_directories(dir);
    std::filesystem::copy_file(donor_config.spill_dir + "/slot-0.snap",
                               dir + "/slot-0.snap");
    std::filesystem::copy_file(donor_config.spill_dir + "/slot-1.snap",
                               dir + "/slot-1.snap");
  }

  // Restart opens B first: B lands on slot 0 (A's pre-crash index) and A on
  // slot 1. Both must fault back to their OWN pre-crash state.
  BrokerConfig config;
  config.spill_dir = dir;
  Broker broker(config);
  EXPECT_EQ(broker.recovery_report().spills_found, 2u);
  ASSERT_TRUE(broker.OpenSession("chaos/b", spec, info).ok());
  ASSERT_TRUE(broker.OpenSession("chaos/a", spec, info).ok());
  EXPECT_EQ(broker.recovery_report().adopted, 2u);

  SessionSnapshot recovered;
  ASSERT_TRUE(broker.Snapshot("chaos/a", &recovered).ok());
  EXPECT_EQ(EncodeSessionSnapshot(recovered), expected_a);
  ASSERT_TRUE(broker.Snapshot("chaos/b", &recovered).ok());
  EXPECT_EQ(EncodeSessionSnapshot(recovered), expected_b);
  EXPECT_EQ(broker.SweepUnclaimedSpills(), 0u);
}

TEST(BrokerChaosTest, UnclaimedSpillsAreSweptNotLeaked) {
  FaultGuard guard;
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("chaos/orphan", 6, 2000, "reserve", 29);
  WorkloadInfo info = factory.Prepare(spec);
  const std::string dir = ChaosDir("orphan");

  std::string spill_bytes;
  {
    BrokerConfig donor_config;
    donor_config.spill_dir = ChaosDir("orphan_donor");
    Broker donor(donor_config);
    ASSERT_TRUE(donor.OpenSession("chaos/left-behind", spec, info).ok());
    DriveRounds(&donor, &factory, spec, "chaos/left-behind", 5);
    ASSERT_EQ(donor.EvictIdleSessions(0), 1u);
    spill_bytes = ReadFileBytes(donor_config.spill_dir + "/slot-0.snap");
  }
  std::filesystem::create_directories(dir);
  WriteFileBytes(dir + "/slot-3.snap", spill_bytes);

  BrokerConfig config;
  config.spill_dir = dir;
  Broker broker(config);
  EXPECT_EQ(broker.recovery_report().spills_found, 1u);
  // The fleet this broker opens does NOT include the orphan's product.
  ASSERT_TRUE(broker.OpenSession("chaos/other", spec, info).ok());
  EXPECT_EQ(broker.SweepUnclaimedSpills(), 1u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/slot-3.snap"));
  EXPECT_EQ(broker.recovery_report().orphans_reclaimed, 1u);
}

// ------------------------------------------------------- server chaos

TEST(ServerChaosTest, OverloadShedsFramesWithResourceExhausted) {
  FaultGuard guard;
  Broker broker;
  server::ServerConfig config;
  config.max_inflight_frames = 1;  // serve one frame per wakeup, shed the rest
  server::TcpServer server(&broker, config);
  ASSERT_TRUE(server.Start().ok());

  server::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  constexpr int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) client.QueuePing();
  ASSERT_TRUE(client.Flush().ok());
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    server::Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp).ok());
    if (resp.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(ok, 0);    // at least the first frame of each wakeup serves
  EXPECT_GT(shed, 0);  // a 16-deep pipeline must trip a 1-frame cap
  EXPECT_EQ(server.stats().shed_frames, shed);

  // Shedding is load shedding, not a drop: the connection still serves.
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
}

TEST(ServerChaosTest, IdleConnectionsAreReapedWithAnErrorFrame) {
  FaultGuard guard;
  Broker broker;
  server::ServerConfig config;
  config.idle_timeout_ms = 50;
  server::TcpServer server(&broker, config);
  ASSERT_TRUE(server.Start().ok());

  server::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // The reaper closed us: the next exchange surfaces the final error frame
  // (or the close itself) as a transport-level Unavailable.
  Status s = client.Ping();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  EXPECT_GE(server.stats().idle_reaped, 1);

  // A fresh connection works — the reaper only kills the silent one.
  ASSERT_TRUE(client.Reconnect().ok());
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
}

// A peer that triggers a framing violation and then never reads its socket
// leaves the final error frame (plus any pinned response backlog) undrained
// forever. The idle reaper must kill such connections rather than exempting
// them — otherwise exactly the misbehaving peers it targets pin their fd,
// buffers, and poll slot indefinitely.
TEST(ServerChaosTest, ViolatedConnectionThatNeverReadsIsReaped) {
  FaultGuard guard;
  Broker broker;
  server::ServerConfig config;
  config.idle_timeout_ms = 50;
  config.so_sndbuf = 4096;  // no autotune: a silent peer pins output fast
  server::TcpServer server(&broker, config);
  ASSERT_TRUE(server.Start().ok());

  // Raw socket with a tiny receive window (negotiated before connect).
  server::UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  ASSERT_TRUE(fd.valid());
  int rcvbuf = 1024;
  ASSERT_EQ(::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf),
            0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  // Pipeline pings whose responses this peer will never read: once served,
  // they overflow the shrunken socket buffers into the connection's
  // userspace backlog. (Serve them fully BEFORE the violation below — a
  // violation discards all unparsed input, so interleaving would leave no
  // backlog to pin the error frame behind.)
  std::string burst;
  server::WireWriter w(&burst);
  for (uint64_t i = 1; i <= 4000; ++i) {
    size_t frame = w.BeginFrame();
    w.PutRequestHeader(server::Opcode::kPing, i);
    w.EndFrame(frame);
  }
  ASSERT_EQ(::send(fd.get(), burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));
  for (int i = 0; i < 200 && server.stats().frames_served < 4000; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server.stats().frames_served, 4000);

  // Now the framing violation (oversized length prefix): the connection
  // flips to close_after_flush with its error frame pinned behind the
  // unread response backlog.
  std::string garbage;
  {
    server::WireWriter g(&garbage);
    g.PutU32(static_cast<uint32_t>(server::kMaxFramePayloadBytes + 1));
  }
  ASSERT_EQ(::send(fd.get(), garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));

  // Never read. The reaper must still free the connection.
  for (int i = 0; i < 200 && server.stats().idle_reaped < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().idle_reaped, 1);
  EXPECT_GE(server.stats().protocol_errors, 1);
  server.Stop();
}

TEST(ServerChaosTest, InjectedRecvResetIsAbsorbedByClientRetry) {
  FaultGuard guard;
  Broker broker;
  server::TcpServer server(&broker);
  ASSERT_TRUE(server.Start().ok());

  // First read on the connection dies mid-frame (simulated ECONNRESET);
  // the retrying client reconnects and the second attempt lands.
  FaultInjector::Global().TriggerOnHit("server.recv_reset", 1);
  FaultInjector::Global().Arm(5);

  server::ClientConfig client_config;
  client_config.max_retries = 3;
  client_config.backoff_base_ms = 1;
  server::Client client(client_config);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE(client.retries(), 1);
  EXPECT_GE(client.reconnects(), 1);
  EXPECT_EQ(FaultInjector::Global().fires("server.recv_reset"), 1u);

  FaultInjector::Global().Disarm();
  server.Stop();
}

TEST(ServerChaosTest, InjectedAcceptFailureOnlyCostsOneDial) {
  FaultGuard guard;
  Broker broker;
  server::TcpServer server(&broker);
  ASSERT_TRUE(server.Start().ok());

  FaultInjector::Global().TriggerOnHit("server.accept", 1);
  FaultInjector::Global().Arm(5);

  server::ClientConfig client_config;
  client_config.max_retries = 3;
  client_config.backoff_base_ms = 1;
  server::Client client(client_config);
  // The first accept is dropped server-side; the connect itself succeeds
  // (the kernel completed the handshake), so the failure surfaces on the
  // first exchange and the retry redials.
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(FaultInjector::Global().fires("server.accept"), 1u);

  FaultInjector::Global().Disarm();
  server.Stop();
}

// ------------------------------------------------------- client chaos

TEST(ClientChaosTest, DeadlineExpiresAgainstASilentServer) {
  FaultGuard guard;
  // A listener that never accepts: the kernel completes the TCP handshake
  // from the backlog, then the "server" stays silent forever.
  server::UniqueFd listener;
  uint16_t port = 0;
  ASSERT_TRUE(server::ListenTcp("127.0.0.1", 0, &listener, &port).ok());

  server::ClientConfig config;
  config.deadline_ms = 100;
  server::Client client(config);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  const auto before = std::chrono::steady_clock::now();
  Status s = client.Ping();
  const auto waited = std::chrono::steady_clock::now() - before;
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited).count(),
            5000);
  // The connection is poisoned: a late response must never be matched to
  // the next request.
  EXPECT_FALSE(client.connected());
}

TEST(ClientChaosTest, RetriesReconnectAcrossAServerRestart) {
  FaultGuard guard;
  Broker broker;
  auto server1 = std::make_unique<server::TcpServer>(&broker);
  ASSERT_TRUE(server1->Start().ok());
  const uint16_t port = server1->port();

  server::ClientConfig config;
  config.max_retries = 5;
  config.backoff_base_ms = 5;
  server::Client client(config);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(client.Ping().ok());

  // Kill the server and immediately bring up a replacement on the same port
  // (SO_REUSEADDR). The client's next idempotent call rides its retry loop
  // across the gap.
  server1.reset();
  server::ServerConfig config2;
  config2.port = port;
  server::TcpServer server2(&broker, config2);
  ASSERT_TRUE(server2.Start().ok());

  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE(client.reconnects(), 1);
  server2.Stop();
}

TEST(ClientChaosTest, MutatingCallsSurfaceUnavailableAndNeverAutoRetry) {
  FaultGuard guard;
  StreamFactory factory;
  ScenarioSpec spec = LinearSpec("chaos/mutate", 6, 2000, "reserve", 33);
  Broker broker;
  ASSERT_TRUE(broker.OpenSession("chaos/mutate", spec, factory.Prepare(spec)).ok());
  server::TcpServer server(&broker);
  ASSERT_TRUE(server.Start().ok());

  server::ClientConfig config;
  config.max_retries = 5;
  config.backoff_base_ms = 1;
  server::Client client(config);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  broker::ProductHandle handle;
  ASSERT_TRUE(client.Resolve("chaos/mutate", &handle).ok());

  // Every recv dies until disarmed: a PostPrice must fail Unavailable after
  // ONE send (at-most-once — the broker may or may not have priced it), not
  // silently replay.
  FaultInjector::Global().SetProbability("server.recv_reset", 1.0);
  FaultInjector::Global().Arm(9);
  const int64_t retries_before = client.retries();
  std::vector<double> features(6, 0.1);
  Quote quote;
  Status s = client.PostPrice(handle, features, 0.0, &quote);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  EXPECT_EQ(client.retries(), retries_before);  // no auto-retry for mutations
  FaultInjector::Global().Disarm();

  // The next mutating call auto-reconnects first and succeeds.
  EXPECT_TRUE(client.PostPrice(handle, features, 0.0, &quote).ok());
  server.Stop();
}

}  // namespace
}  // namespace pdm::broker
