#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/flags.h"
#include "common/histogram.h"
#include "common/memory.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "pdm.h"  // umbrella header must stay self-contained

namespace pdm {
namespace {

// ---------------------------------------------------------------- strings

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, SplitTrailingSeparator) {
  auto parts = Split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, TrimBothEnds) {
  EXPECT_EQ(Trim("  hello \t"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StringUtil, ToLower) { EXPECT_EQ(ToLower("TrUe"), "true"); }

TEST(StringUtil, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" -1e3 ").value(), -1000.0);
}

TEST(StringUtil, ParseDoubleInvalid) {
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(StringUtil, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_FALSE(ParseInt64("4.2").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
}

TEST(StringUtil, ParseBool) {
  EXPECT_TRUE(ParseBool("true").value());
  EXPECT_TRUE(ParseBool("YES").value());
  EXPECT_TRUE(ParseBool("1").value());
  EXPECT_FALSE(ParseBool("off").value());
  EXPECT_FALSE(ParseBool("maybe").has_value());
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVariance) {
  RunningStats s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double v = 0.37 * i - 3.0;
    (i < 20 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeIntoEmpty) {
  RunningStats a, b;
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

// ---------------------------------------------------------------- glob

TEST(GlobMatch, LiteralAndWildcards) {
  EXPECT_TRUE(GlobMatch("fig4", "fig4"));
  EXPECT_FALSE(GlobMatch("fig4", "fig5"));
  EXPECT_TRUE(GlobMatch("fig4/*", "fig4/b/reserve"));
  EXPECT_FALSE(GlobMatch("fig4/*", "fig5a/pure"));
  EXPECT_TRUE(GlobMatch("*", "anything at all"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("throughput/*/n=2?", "throughput/pure/n=20"));
  EXPECT_FALSE(GlobMatch("throughput/*/n=2?", "throughput/pure/n=2"));
  EXPECT_TRUE(GlobMatch("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(GlobMatch("a*b*c", "a-x-b-y"));
  EXPECT_TRUE(GlobMatch("?", "x"));
  EXPECT_FALSE(GlobMatch("?", ""));
  // '*' must be able to match across '/' (selecting whole families).
  EXPECT_TRUE(GlobMatch("lemma8/*", "lemma8/unsafe/T=3200"));
}

TEST(GlobMatch, BacktracksThroughRepeatedPrefixes) {
  EXPECT_TRUE(GlobMatch("*abc", "ababc"));
  EXPECT_TRUE(GlobMatch("a*bc", "abbc"));
  EXPECT_FALSE(GlobMatch("*abc", "ababd"));
}

TEST(EditDistance, KnownDistances) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("scenario", "scnario"), 1u);
}

// ---------------------------------------------------------------- flags

TEST(FlagSet, ParsesAllTypes) {
  int64_t rounds = 10;
  double eps = 0.5;
  bool verbose = false;
  std::string out = "a.csv";
  FlagSet flags("test");
  flags.AddInt64("rounds", &rounds, "rounds");
  flags.AddDouble("eps", &eps, "epsilon");
  flags.AddBool("verbose", &verbose, "verbosity");
  flags.AddString("out", &out, "output");
  const char* argv[] = {"test", "--rounds=100", "--eps", "0.25", "--verbose",
                        "--out=b.csv"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(rounds, 100);
  EXPECT_DOUBLE_EQ(eps, 0.25);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(out, "b.csv");
}

TEST(FlagSet, RejectsUnknownFlag) {
  FlagSet flags("test");
  const char* argv[] = {"test", "--nope=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagSet, BareUnknownFlagIsReportedAsUnknown) {
  // A trailing unknown flag with no value used to be misreported as
  // "missing a value"; it must fail as unknown (and must not consume the
  // next argument as its value when one follows).
  int64_t rounds = 5;
  FlagSet flags("test");
  flags.AddInt64("rounds", &rounds, "rounds");
  const char* bare[] = {"test", "--nope"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(bare)));
  const char* with_next[] = {"test", "--nope", "--rounds=9"};
  EXPECT_FALSE(flags.Parse(3, const_cast<char**>(with_next)));
  EXPECT_EQ(rounds, 5);  // nothing was assigned on the error path
}

TEST(FlagSet, ParsesUint64) {
  uint64_t seed = 7;
  FlagSet flags("test");
  flags.AddUint64("seed", &seed, "seed");
  // The upper half of the uint64 range (> INT64_MAX) must parse.
  const char* argv[] = {"test", "--seed=18446744073709551615"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(seed, 18446744073709551615ull);

  const char* negative[] = {"test", "--seed=-3"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(negative)));
}

TEST(StringUtil, ParseUint64) {
  EXPECT_EQ(ParseUint64("0"), 0ull);
  EXPECT_EQ(ParseUint64("18446744073709551615"), 18446744073709551615ull);
  EXPECT_FALSE(ParseUint64("18446744073709551616").has_value());  // overflow
  EXPECT_FALSE(ParseUint64("-1").has_value());
  EXPECT_FALSE(ParseUint64("12x").has_value());
  EXPECT_FALSE(ParseUint64("").has_value());
}

TEST(FlagSet, KnownFlagListNamesEveryFlag) {
  int64_t rounds = 1;
  double eps = 0.1;
  FlagSet flags("test");
  flags.AddInt64("rounds", &rounds, "rounds");
  flags.AddDouble("eps", &eps, "epsilon");
  std::string known = flags.KnownFlagList();
  EXPECT_EQ(known, "--rounds, --eps");
  EXPECT_EQ(FlagSet("empty").KnownFlagList(), "(none; only --help)");
}

TEST(FlagSet, RejectsBadValue) {
  int64_t rounds = 10;
  FlagSet flags("test");
  flags.AddInt64("rounds", &rounds, "rounds");
  const char* argv[] = {"test", "--rounds=ten"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagSet, HelpReturnsFalse) {
  FlagSet flags("test");
  const char* argv[] = {"test", "--help"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagSet, DefaultsSurviveEmptyArgv) {
  int64_t rounds = 7;
  FlagSet flags("test");
  flags.AddInt64("rounds", &rounds, "rounds");
  const char* argv[] = {"test"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(rounds, 7);
}

TEST(FlagSet, UsageListsFlagsAndDefaults) {
  int64_t rounds = 7;
  FlagSet flags("prog");
  flags.AddInt64("rounds", &rounds, "number of rounds");
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--rounds"), std::string::npos);
  EXPECT_NE(usage.find("7"), std::string::npos);
  EXPECT_NE(usage.find("number of rounds"), std::string::npos);
}

// ---------------------------------------------------------------- printer

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "2.5"});
  std::ostringstream os;
  table.Print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

// ---------------------------------------------------------------- csv

TEST(CsvWriter, WritesHeaderAndEscapes) {
  std::string path = testing::TempDir() + "/pdm_csv_test.csv";
  {
    CsvWriter writer(path, {"a", "b"});
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"1", "has,comma"});
    writer.WriteRow({"2", "has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, EmptyPathIsInactive) {
  CsvWriter writer("", {"a"});
  EXPECT_FALSE(writer.ok());
  writer.WriteRow({"1"});  // must not crash
}

// ---------------------------------------------------------------- memory

TEST(Memory, RssIsPositiveOnLinux) {
  EXPECT_GT(CurrentRssBytes(), 0);
  EXPECT_GT(CurrentRssMiB(), 0.0);
}

// --------------------------------------------------------------- histogram

TEST(LatencyHistogram, EmptyReportsZeros) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.Quantile(0.5), 0u);
  EXPECT_EQ(hist.Quantile(1.0), 0u);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Below 2^kSubBucketBits every bucket is one nanosecond wide: the
  // histogram is lossless there and quantiles are exact order statistics.
  LatencyHistogram hist;
  for (uint64_t v : {5u, 1u, 9u, 3u, 7u}) hist.Record(v);
  EXPECT_EQ(hist.count(), 5);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 9u);
  EXPECT_EQ(hist.mean(), 5.0);
  EXPECT_EQ(hist.Quantile(0.0), 1u);
  EXPECT_EQ(hist.Quantile(0.2), 1u);
  EXPECT_EQ(hist.Quantile(0.5), 5u);
  EXPECT_EQ(hist.Quantile(1.0), 9u);
}

TEST(LatencyHistogram, QuantileRelativeErrorIsBounded) {
  // Across magnitudes the bucket floor may undershoot the true value, but
  // never by more than 2^-kSubBucketBits of it (the log-linear contract).
  const double kResolution =
      1.0 / static_cast<double>(LatencyHistogram::kSubBuckets);
  for (uint64_t value : {100u, 1000u, 123456u, 7654321u, 987654321u}) {
    LatencyHistogram hist;
    hist.Record(value);
    uint64_t reported = hist.Quantile(0.5);
    EXPECT_LE(reported, value);
    EXPECT_GE(static_cast<double>(reported),
              static_cast<double>(value) * (1.0 - kResolution))
        << "value " << value;
    // min/max stay exact even when the bucket floor truncates.
    EXPECT_EQ(hist.min(), value);
    EXPECT_EQ(hist.max(), value);
  }
}

TEST(LatencyHistogram, OversizedSamplesClampToTopBucket) {
  LatencyHistogram hist;
  hist.Record(LatencyHistogram::kMaxValue);
  hist.Record(~uint64_t{0});  // clamps into the top bucket
  EXPECT_EQ(hist.count(), 2);
  // Interior quantiles come from the (clamped) top bucket; the extremes
  // report the exact tracked values, clamping notwithstanding.
  EXPECT_LE(hist.Quantile(0.5), LatencyHistogram::kMaxValue);
  EXPECT_GT(hist.Quantile(0.5), LatencyHistogram::kMaxValue / 2);
  EXPECT_EQ(hist.Quantile(1.0), ~uint64_t{0});
  EXPECT_EQ(hist.min(), LatencyHistogram::kMaxValue);
  EXPECT_EQ(hist.max(), ~uint64_t{0});
}

TEST(LatencyHistogram, MergeMatchesRecordingEverythingInOne) {
  LatencyHistogram a, b, whole;
  for (uint64_t v = 1; v <= 2000; ++v) {
    (v % 3 == 0 ? a : b).Record(v * 17);
    whole.Record(v * 17);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
  EXPECT_EQ(a.mean(), whole.mean());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
}

// ---------------------------------------------------------------- umbrella

TEST(Umbrella, VersionIsCoherent) {
  EXPECT_EQ(std::string(kVersionString),
            std::to_string(kVersionMajor) + "." + std::to_string(kVersionMinor) + "." +
                std::to_string(kVersionPatch));
}

}  // namespace
}  // namespace pdm
