#include <gtest/gtest.h>

#include <cmath>

#include "data/csv_reader.h"
#include "data/table.h"

namespace pdm {
namespace {

// ---------------------------------------------------------------- table

TEST(Table, AddAndLookupColumns) {
  Table t;
  t.AddColumn(Column::Doubles("price", {1.0, 2.0}));
  t.AddColumn(Column::Int64s("count", {10, 20}));
  t.AddColumn(Column::Strings("city", {"NYC", "LA"}));
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.num_cols(), 3);
  EXPECT_TRUE(t.HasColumn("price"));
  EXPECT_FALSE(t.HasColumn("missing"));
  EXPECT_DOUBLE_EQ(t.column("price").DoubleAt(1), 2.0);
  EXPECT_EQ(t.column("count").Int64At(0), 10);
  EXPECT_EQ(t.column("city").StringAt(1), "LA");
  EXPECT_EQ(t.column(0).name(), "price");
}

TEST(Table, NumericAtWidensInt64) {
  Table t;
  t.AddColumn(Column::Int64s("count", {7}));
  EXPECT_DOUBLE_EQ(t.column("count").NumericAt(0), 7.0);
}

TEST(Table, ColumnNames) {
  Table t;
  t.AddColumn(Column::Doubles("a", {1.0}));
  t.AddColumn(Column::Doubles("b", {2.0}));
  EXPECT_EQ(t.ColumnNames(), (std::vector<std::string>{"a", "b"}));
}

// ---------------------------------------------------------------- csv

TEST(CsvReader, ParsesTypedColumns) {
  auto table = ReadCsvFromString("id,score,name\n1,2.5,alice\n2,3.5,bob\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->column("id").type(), ColumnType::kInt64);
  EXPECT_EQ(table->column("score").type(), ColumnType::kDouble);
  EXPECT_EQ(table->column("name").type(), ColumnType::kString);
  EXPECT_EQ(table->column("id").Int64At(1), 2);
  EXPECT_DOUBLE_EQ(table->column("score").DoubleAt(0), 2.5);
  EXPECT_EQ(table->column("name").StringAt(1), "bob");
}

TEST(CsvReader, IntColumnPromotedToDoubleOnMixedContent) {
  auto table = ReadCsvFromString("x\n1\n2.5\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->column("x").type(), ColumnType::kDouble);
}

TEST(CsvReader, EmptyNumericCellsBecomeNaN) {
  auto table = ReadCsvFromString("x\n1.5\n\n2.5\n");
  ASSERT_TRUE(table.has_value());
  // Blank lines are skipped; an explicit empty field is NaN.
  auto table2 = ReadCsvFromString("x,y\n1.5,a\n,b\n");
  ASSERT_TRUE(table2.has_value());
  EXPECT_TRUE(std::isnan(table2->column("x").DoubleAt(1)));
}

TEST(CsvReader, QuotedFieldsWithCommasAndQuotes) {
  auto table = ReadCsvFromString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->column("a").StringAt(0), "x,y");
  EXPECT_EQ(table->column("b").StringAt(0), "he said \"hi\"");
}

TEST(CsvReader, RaggedRowIsAnError) {
  std::string error;
  auto table = ReadCsvFromString("a,b\n1\n", &error);
  EXPECT_FALSE(table.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(CsvReader, EmptyInputIsAnError) {
  std::string error;
  EXPECT_FALSE(ReadCsvFromString("", &error).has_value());
}

TEST(CsvReader, MissingFileIsAnError) {
  std::string error;
  EXPECT_FALSE(ReadCsv("/nonexistent/path.csv", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(CsvReader, NegativeNumbersAndWhitespace) {
  auto table = ReadCsvFromString("x\n-5\n 7 \n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->column("x").type(), ColumnType::kInt64);
  EXPECT_EQ(table->column("x").Int64At(0), -5);
  EXPECT_EQ(table->column("x").Int64At(1), 7);
}

}  // namespace
}  // namespace pdm
