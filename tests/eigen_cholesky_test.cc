#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"
#include "rng/rng.h"

namespace pdm {
namespace {

Matrix RandomSpd(int n, Rng* rng) {
  // A = B·Bᵀ + n·I is comfortably positive definite.
  Matrix b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b(i, j) = rng->NextGaussian();
  }
  Matrix a = b.MatMul(b.Transposed());
  for (int i = 0; i < n; ++i) a(i, i) += n;
  return a;
}

// ---------------------------------------------------------------- cholesky

TEST(Cholesky, FactorizesKnownMatrix) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  Matrix l(0, 0);
  ASSERT_TRUE(CholeskyFactor(a, &l));
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l(1, 0), 1.0);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, −1
  Matrix l(0, 0);
  EXPECT_FALSE(CholeskyFactor(a, &l));
}

TEST(Cholesky, SolveRoundTrip) {
  Rng rng(1);
  for (int n : {2, 5, 10}) {
    Matrix a = RandomSpd(n, &rng);
    Vector x_true = rng.GaussianVector(n);
    Vector b = a.MatVec(x_true);
    Vector x = SolveSpd(a, b);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(x[static_cast<size_t>(i)], x_true[static_cast<size_t>(i)], 1e-8);
    }
  }
}

TEST(Cholesky, LogDetMatchesKnown) {
  Matrix a = Matrix::ScaledIdentity(3, 4.0);  // det = 64
  Matrix l(0, 0);
  ASSERT_TRUE(CholeskyFactor(a, &l));
  EXPECT_NEAR(CholeskyLogDet(l), std::log(64.0), 1e-12);
}

// ---------------------------------------------------------------- jacobi

TEST(JacobiEigen, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 1}});
  EigenSymResult r = JacobiEigenSymmetric(a);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-12);
}

TEST(JacobiEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  EigenSymResult r = JacobiEigenSymmetric(a);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-10);
}

TEST(JacobiEigen, EigenvectorsSatisfyDefinition) {
  Rng rng(3);
  Matrix a = RandomSpd(6, &rng);
  EigenSymResult r = JacobiEigenSymmetric(a);
  ASSERT_TRUE(r.converged);
  for (int k = 0; k < 6; ++k) {
    Vector v(6);
    for (int i = 0; i < 6; ++i) v[static_cast<size_t>(i)] = r.eigenvectors(i, k);
    Vector av = a.MatVec(v);
    for (int i = 0; i < 6; ++i) {
      EXPECT_NEAR(av[static_cast<size_t>(i)],
                  r.eigenvalues[static_cast<size_t>(k)] * v[static_cast<size_t>(i)], 1e-7);
    }
  }
}

TEST(JacobiEigen, EigenvectorsAreOrthonormal) {
  Rng rng(4);
  Matrix a = RandomSpd(5, &rng);
  EigenSymResult r = JacobiEigenSymmetric(a);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      double dot = 0.0;
      for (int k = 0; k < 5; ++k) dot += r.eigenvectors(k, i) * r.eigenvectors(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(JacobiEigen, EigenvaluesSortedDescending) {
  Rng rng(5);
  Matrix a = RandomSpd(8, &rng);
  EigenSymResult r = JacobiEigenSymmetric(a);
  for (size_t i = 1; i < r.eigenvalues.size(); ++i) {
    EXPECT_GE(r.eigenvalues[i - 1], r.eigenvalues[i]);
  }
}

TEST(JacobiEigen, TraceAndDetInvariants) {
  Rng rng(6);
  Matrix a = RandomSpd(4, &rng);
  EigenSymResult r = JacobiEigenSymmetric(a);
  double eig_sum = 0.0, eig_logprod = 0.0;
  for (double ev : r.eigenvalues) {
    eig_sum += ev;
    eig_logprod += std::log(ev);
  }
  EXPECT_NEAR(eig_sum, a.Trace(), 1e-8);
  Matrix l(0, 0);
  ASSERT_TRUE(CholeskyFactor(a, &l));
  EXPECT_NEAR(eig_logprod, CholeskyLogDet(l), 1e-8);
}

TEST(JacobiEigen, SmallestEigenvalueHelper) {
  Matrix a = Matrix::FromRows({{5, 0}, {0, 0.25}});
  EXPECT_NEAR(SmallestEigenvalue(a), 0.25, 1e-12);
}

}  // namespace
}  // namespace pdm
