#include <gtest/gtest.h>

#include <cmath>

#include "pricing/ellipsoid_engine.h"
#include "pricing/engine_state.h"
#include "rng/rng.h"

namespace pdm {
namespace {

EllipsoidEngineConfig BaseConfig(int dim, int64_t horizon) {
  EllipsoidEngineConfig config;
  config.dim = dim;
  config.horizon = horizon;
  config.initial_radius = 2.0 * std::sqrt(static_cast<double>(dim));
  config.use_reserve = true;
  return config;
}

Vector UnitFeature(int dim, Rng* rng) {
  Vector x = rng->GaussianVector(dim);
  RescaleToNorm(&x, 1.0);
  return x;
}

TEST(EllipsoidEngine, DefaultEpsilonTheorem1) {
  EXPECT_DOUBLE_EQ(DefaultEllipsoidEpsilon(10, 1000, 0.0), 0.1);   // n²/T
  EXPECT_DOUBLE_EQ(DefaultEllipsoidEpsilon(10, 1000, 1.0), 40.0);  // 4nδ clamp
}

TEST(EllipsoidEngine, FirstExploratoryPriceIsMidpoint) {
  EllipsoidPricingEngine engine(BaseConfig(4, 1000));
  Rng rng(1);
  Vector x = UnitFeature(4, &rng);
  // Initial ellipsoid centered at origin: midpoint 0, so with a positive
  // reserve the posted price equals the reserve.
  PostedPrice posted = engine.PostPrice(x, 0.5);
  EXPECT_TRUE(posted.exploratory);
  EXPECT_DOUBLE_EQ(posted.price, 0.5);
  engine.Observe(true);
}

TEST(EllipsoidEngine, PureVersionIgnoresReserve) {
  EllipsoidEngineConfig config = BaseConfig(4, 1000);
  config.use_reserve = false;
  EllipsoidPricingEngine engine(config);
  Rng rng(2);
  Vector x = UnitFeature(4, &rng);
  PostedPrice posted = engine.PostPrice(x, 100.0);  // enormous reserve, ignored
  EXPECT_FALSE(posted.certain_no_sale);
  EXPECT_DOUBLE_EQ(posted.price, 0.0);  // midpoint of the origin-centered ball
  engine.Observe(false);
}

TEST(EllipsoidEngine, SkipsWhenReserveProvablyAboveValue) {
  EllipsoidPricingEngine engine(BaseConfig(3, 1000));
  Rng rng(3);
  Vector x = UnitFeature(3, &rng);
  double upper = engine.EstimateValueInterval(x).upper;
  PostedPrice posted = engine.PostPrice(x, upper + 1.0);
  EXPECT_TRUE(posted.certain_no_sale);
  EXPECT_DOUBLE_EQ(posted.price, upper + 1.0);
  engine.Observe(false);
  EXPECT_EQ(engine.counters().skipped_rounds, 1);
  EXPECT_EQ(engine.counters().cuts_applied, 0);
}

TEST(EllipsoidEngine, RejectionCutsKnowledgeSet) {
  EllipsoidPricingEngine engine(BaseConfig(3, 1000));
  Rng rng(4);
  Vector x = UnitFeature(3, &rng);
  ValueInterval before = engine.EstimateValueInterval(x);
  engine.PostPrice(x, 0.0);
  engine.Observe(false);
  ValueInterval after = engine.EstimateValueInterval(x);
  EXPECT_LT(after.width(), before.width());
  EXPECT_EQ(engine.counters().cuts_applied, 1);
}

TEST(EllipsoidEngine, AcceptanceCutsKnowledgeSet) {
  EllipsoidPricingEngine engine(BaseConfig(3, 1000));
  Rng rng(5);
  Vector x = UnitFeature(3, &rng);
  ValueInterval before = engine.EstimateValueInterval(x);
  engine.PostPrice(x, 0.0);
  engine.Observe(true);
  ValueInterval after = engine.EstimateValueInterval(x);
  EXPECT_LT(after.width(), before.width());
}

TEST(EllipsoidEngine, ConservativePriceNeverCuts) {
  EllipsoidEngineConfig config = BaseConfig(3, 1000);
  config.epsilon = 1e9;  // everything conservative
  EllipsoidPricingEngine engine(config);
  Rng rng(6);
  Vector x = UnitFeature(3, &rng);
  double log_volume_before = engine.knowledge_set().LogVolumeUnnormalized();
  PostedPrice posted = engine.PostPrice(x, 0.0);
  EXPECT_FALSE(posted.exploratory);
  engine.Observe(false);
  EXPECT_DOUBLE_EQ(engine.knowledge_set().LogVolumeUnnormalized(), log_volume_before);
  EXPECT_EQ(engine.counters().cuts_applied, 0);
  EXPECT_EQ(engine.counters().conservative_rounds, 1);
}

TEST(EllipsoidEngine, ConservativeCutAblationSwitchEnablesCuts) {
  EllipsoidEngineConfig config = BaseConfig(3, 1000);
  config.epsilon = 1e9;
  config.allow_conservative_cuts = true;
  EllipsoidPricingEngine engine(config);
  Rng rng(7);
  Vector x = UnitFeature(3, &rng);
  // Post a conservative price above the midpoint via the reserve so the cut
  // position is valid, then reject.
  engine.PostPrice(x, 0.5);
  engine.Observe(false);
  EXPECT_EQ(engine.counters().cuts_applied, 1);
}

TEST(EllipsoidEngine, ThetaNeverExcludedUnderConsistentFeedback) {
  // The central invariant behind the regret analysis: with noiseless
  // consistent feedback, θ* remains in every E_t.
  int dim = 5;
  EllipsoidEngineConfig config = BaseConfig(dim, 10000);
  EllipsoidPricingEngine engine(config);
  Rng rng(8);
  Vector theta = rng.GaussianVector(dim);
  RescaleToNorm(&theta, std::sqrt(2.0 * dim));  // within R = 2√n
  for (int t = 0; t < 300; ++t) {
    Vector x = UnitFeature(dim, &rng);
    double value = Dot(x, theta);
    double reserve = 0.7 * value;  // reserve below value
    PostedPrice posted = engine.PostPrice(x, reserve);
    bool accepted = !posted.certain_no_sale && posted.price <= value;
    engine.Observe(accepted);
    ASSERT_TRUE(engine.knowledge_set().Contains(theta, 1e-6)) << "round " << t;
  }
}

TEST(EllipsoidEngine, PriceAlwaysAtLeastReserve) {
  EllipsoidPricingEngine engine(BaseConfig(4, 1000));
  Rng rng(9);
  Vector theta = rng.GaussianVector(4);
  RescaleToNorm(&theta, 2.0);
  for (int t = 0; t < 200; ++t) {
    Vector x = UnitFeature(4, &rng);
    double reserve = rng.NextUniform(0.0, 3.0);
    PostedPrice posted = engine.PostPrice(x, reserve);
    EXPECT_GE(posted.price, reserve - 1e-12);
    engine.Observe(!posted.certain_no_sale && posted.price <= Dot(x, theta));
  }
}

TEST(EllipsoidEngine, ExploratoryRoundsRespectLemma6Bound) {
  // Lemma 6/7: Te ≤ 20·n²·log(20·R·S²·(n+1)/ε).
  int dim = 4;
  int64_t horizon = 20000;
  EllipsoidEngineConfig config = BaseConfig(dim, horizon);
  EllipsoidPricingEngine engine(config);
  Rng rng(10);
  Vector theta = rng.GaussianVector(dim);
  RescaleToNorm(&theta, std::sqrt(2.0 * dim));
  for (int64_t t = 0; t < horizon; ++t) {
    Vector x = UnitFeature(dim, &rng);
    double value = Dot(x, theta);
    PostedPrice posted = engine.PostPrice(x, 0.5 * value);
    engine.Observe(!posted.certain_no_sale && posted.price <= value);
  }
  double n = dim;
  double bound =
      20.0 * n * n *
      std::log(20.0 * config.initial_radius * 1.0 * (n + 1.0) / engine.epsilon());
  EXPECT_LE(static_cast<double>(engine.counters().exploratory_rounds), bound);
}

TEST(EllipsoidEngine, UncertaintyBufferLowersConservativePrice) {
  EllipsoidEngineConfig config = BaseConfig(3, 1000);
  config.epsilon = 1e9;  // force conservative
  config.delta = 0.25;
  EllipsoidPricingEngine engine(config);
  Rng rng(11);
  Vector x = UnitFeature(3, &rng);
  double lower = engine.EstimateValueInterval(x).lower;
  PostedPrice posted = engine.PostPrice(x, -1e9);
  EXPECT_DOUBLE_EQ(posted.price, lower - 0.25);
  engine.Observe(true);
}

TEST(EllipsoidEngine, UncertaintySkipThresholdIncludesDelta) {
  EllipsoidEngineConfig config = BaseConfig(3, 1000);
  config.delta = 0.5;
  EllipsoidPricingEngine engine(config);
  Rng rng(12);
  Vector x = UnitFeature(3, &rng);
  double upper = engine.EstimateValueInterval(x).upper;
  // q between p̄ and p̄+δ: not yet provably unsellable.
  PostedPrice posted = engine.PostPrice(x, upper + 0.25);
  EXPECT_FALSE(posted.certain_no_sale);
  engine.Observe(false);
  // q above p̄+δ: skip.
  PostedPrice posted2 = engine.PostPrice(x, upper + 1.0);
  EXPECT_TRUE(posted2.certain_no_sale);
  engine.Observe(false);
}

TEST(EllipsoidEngine, CountersPartitionRounds) {
  EllipsoidPricingEngine engine(BaseConfig(3, 100));
  Rng rng(13);
  for (int t = 0; t < 50; ++t) {
    Vector x = UnitFeature(3, &rng);
    PostedPrice posted = engine.PostPrice(x, rng.NextUniform(0.0, 1.0));
    engine.Observe(!posted.certain_no_sale && rng.NextBernoulli(0.5));
  }
  const EngineCounters& c = engine.counters();
  EXPECT_EQ(c.rounds, 50);
  EXPECT_EQ(c.rounds, c.exploratory_rounds + c.conservative_rounds + c.skipped_rounds);
  EXPECT_LE(c.cuts_applied + c.cuts_discarded, c.exploratory_rounds);
}

TEST(EllipsoidEngine, KnowledgeSetStaysHealthyOverLongRun) {
  int dim = 8;
  EllipsoidEngineConfig config = BaseConfig(dim, 100000);
  EllipsoidPricingEngine engine(config);
  Rng rng(14);
  Vector theta = rng.GaussianVector(dim);
  RescaleToNorm(&theta, std::sqrt(2.0 * dim));
  for (int t = 0; t < 2000; ++t) {
    Vector x = UnitFeature(dim, &rng);
    double value = Dot(x, theta);
    PostedPrice posted = engine.PostPrice(x, 0.6 * value);
    engine.Observe(!posted.certain_no_sale && posted.price <= value);
  }
  EXPECT_TRUE(engine.knowledge_set().LooksHealthy());
}

TEST(EllipsoidEngine, NamesMatchPaperVariants) {
  EllipsoidEngineConfig config = BaseConfig(2, 100);
  EXPECT_EQ(EllipsoidPricingEngine(config).name(), "reserve");
  config.delta = 0.1;
  EXPECT_EQ(EllipsoidPricingEngine(config).name(), "reserve+uncertainty");
  config.use_reserve = false;
  EXPECT_EQ(EllipsoidPricingEngine(config).name(), "pure+uncertainty");
  config.delta = 0.0;
  EXPECT_EQ(EllipsoidPricingEngine(config).name(), "pure");
}

TEST(EllipsoidEngine, PackedModeSnapshotResumesBitIdentically) {
  // A packed engine's snapshot serializes dense (one codec for both modes)
  // and must re-encode byte-exactly after a restore, with the restored
  // engine posting bit-identical prices forever after — the cold-tier
  // eviction contract (DESIGN.md §12).
  int dim = 8;
  EllipsoidEngineConfig config = BaseConfig(dim, 100000);
  config.packed_shape = true;
  config.delta = 0.01;
  EllipsoidPricingEngine engine(config);
  EXPECT_TRUE(engine.knowledge_set().packed());
  Rng rng(15);
  Vector theta = rng.GaussianVector(dim);
  RescaleToNorm(&theta, std::sqrt(2.0 * dim));
  for (int t = 0; t < 200; ++t) {
    Vector x = UnitFeature(dim, &rng);
    double value = Dot(x, theta);
    PostedPrice posted = engine.PostPrice(x, 0.6 * value);
    engine.Observe(!posted.certain_no_sale && posted.price <= value);
  }
  EngineSnapshot snap;
  ASSERT_TRUE(engine.SaveSnapshot(&snap));
  EllipsoidPricingEngine restored(config);
  ASSERT_TRUE(restored.LoadSnapshot(snap));
  EXPECT_TRUE(restored.knowledge_set().packed());
  EngineSnapshot again;
  ASSERT_TRUE(restored.SaveSnapshot(&again));
  ASSERT_EQ(again.center, snap.center);
  for (int r = 0; r < dim; ++r) {
    for (int c = 0; c < dim; ++c) {
      ASSERT_EQ(again.shape(r, c), snap.shape(r, c)) << r << "," << c;
    }
  }
  for (int t = 0; t < 200; ++t) {
    Vector x = UnitFeature(dim, &rng);
    double value = Dot(x, theta);
    PostedPrice a = engine.PostPrice(x, 0.6 * value);
    PostedPrice b = restored.PostPrice(x, 0.6 * value);
    ASSERT_EQ(a.price, b.price) << "t=" << t;
    ASSERT_EQ(a.certain_no_sale, b.certain_no_sale) << "t=" << t;
    bool accepted = !a.certain_no_sale && a.price <= value;
    engine.Observe(accepted);
    restored.Observe(accepted);
  }
}

TEST(EllipsoidEngine, PackedModeTracksDenseWithinTolerance) {
  // Packed is a documented-tolerance twin of the dense default: same
  // decisions on well-separated inputs, prices agreeing to ~1e-9 over a
  // long consistent-feedback run (divergence only enters via the dense
  // side's 32-cut re-symmetrization, which packed storage does not need).
  int dim = 6;
  EllipsoidEngineConfig config = BaseConfig(dim, 100000);
  EllipsoidPricingEngine dense(config);
  config.packed_shape = true;
  EllipsoidPricingEngine packed(config);
  Rng rng(16);
  Vector theta = rng.GaussianVector(dim);
  RescaleToNorm(&theta, std::sqrt(2.0 * dim));
  for (int t = 0; t < 1000; ++t) {
    Vector x = UnitFeature(dim, &rng);
    double value = Dot(x, theta);
    PostedPrice a = dense.PostPrice(x, 0.6 * value);
    PostedPrice b = packed.PostPrice(x, 0.6 * value);
    ASSERT_NEAR(a.price, b.price, 1e-9 * std::max(1.0, std::abs(a.price)))
        << "t=" << t;
    bool accepted = !a.certain_no_sale && a.price <= value;
    dense.Observe(accepted);
    packed.Observe(accepted);
  }
  EXPECT_TRUE(packed.knowledge_set().LooksHealthy());
  EXPECT_EQ(dense.counters().exploratory_rounds, packed.counters().exploratory_rounds);
}

}  // namespace
}  // namespace pdm
