#include <gtest/gtest.h>

#include <cmath>

#include "ellipsoid/ellipsoid.h"
#include "rng/rng.h"

namespace pdm {
namespace {

/// Property suite parameterized over dimension: the geometric guarantees the
/// regret analysis rests on (Lemmas 2 and 5, θ*-containment of consistent
/// cuts) hold numerically along random cut sequences.
class EllipsoidPropertyTest : public testing::TestWithParam<int> {};

Vector RandomDirection(int n, Rng* rng) {
  Vector x = rng->GaussianVector(n);
  RescaleToNorm(&x, 1.0);
  return x;
}

TEST_P(EllipsoidPropertyTest, ConsistentCutsNeverExcludeTheta) {
  int n = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(n));
  // θ* strictly inside the initial ball.
  Vector theta = rng.GaussianVector(n);
  RescaleToNorm(&theta, 0.7);
  Ellipsoid e = Ellipsoid::Ball(n, 1.0);

  for (int round = 0; round < 60; ++round) {
    Vector x = RandomDirection(n, &rng);
    SupportInterval s = e.Support(x);
    if (s.half_width <= 1e-9) continue;
    // Price drawn inside the support interval, like an exploratory price.
    double price = rng.NextUniform(s.lower, s.upper);
    double alpha = (s.midpoint - price) / s.half_width;
    double truth = Dot(x, theta);
    double nd = static_cast<double>(n);
    if (truth <= price) {
      // "Rejection-style" consistent feedback: θ* is below the cut.
      if (alpha >= -1.0 / nd && alpha < 1.0) {
        e.CutKeepBelow(x, alpha);
      }
    } else {
      if (-alpha >= -1.0 / nd && -alpha < 1.0) {
        e.CutKeepAbove(x, alpha);
      }
    }
    ASSERT_TRUE(e.Contains(theta, 1e-7))
        << "theta excluded at round " << round << " dim " << n;
    ASSERT_TRUE(e.LooksHealthy());
  }
}

TEST_P(EllipsoidPropertyTest, Lemma2VolumeRatioBound) {
  // Lemma 2: for α ∈ [−1/n, 0], V(E')/V(E) ≤ exp(−(1+nα)²/(5n)).
  int n = GetParam();
  Rng rng(2000 + static_cast<uint64_t>(n));
  double nd = static_cast<double>(n);
  for (int trial = 0; trial < 20; ++trial) {
    Ellipsoid e = Ellipsoid::Ball(n, 1.0);
    // Pre-shape with a couple of central cuts so the test is not ball-only.
    for (int k = 0; k < 3; ++k) e.CutKeepBelow(RandomDirection(n, &rng), 0.0);
    double alpha = rng.NextUniform(-1.0 / nd, 0.0);
    double before = e.LogVolumeUnnormalized();
    e.CutKeepBelow(RandomDirection(n, &rng), alpha);
    double after = e.LogVolumeUnnormalized();
    double bound = -(1.0 + nd * alpha) * (1.0 + nd * alpha) / (5.0 * nd);
    EXPECT_LE(after - before, bound + 1e-9)
        << "dim " << n << " alpha " << alpha;
  }
}

TEST_P(EllipsoidPropertyTest, Lemma5SmallestEigenvalueDropBound) {
  // Lemma 5: one exploratory cut with α ∈ [−1/(2n), 0] cannot shrink the
  // smallest eigenvalue below n²(1−α)²/(n+1)² of its previous value.
  int n = GetParam();
  Rng rng(3000 + static_cast<uint64_t>(n));
  double nd = static_cast<double>(n);
  for (int trial = 0; trial < 10; ++trial) {
    Ellipsoid e = Ellipsoid::Ball(n, 1.0);
    for (int k = 0; k < 2; ++k) e.CutKeepBelow(RandomDirection(n, &rng), 0.0);
    double alpha = rng.NextUniform(-0.5 / nd, 0.0);
    double gamma_before = e.SmallestShapeEigenvalue();
    e.CutKeepBelow(RandomDirection(n, &rng), alpha);
    double gamma_after = e.SmallestShapeEigenvalue();
    double factor = nd * nd * (1.0 - alpha) * (1.0 - alpha) / ((nd + 1.0) * (nd + 1.0));
    EXPECT_GE(gamma_after, factor * gamma_before - 1e-9)
        << "dim " << n << " alpha " << alpha;
  }
}

TEST_P(EllipsoidPropertyTest, CentralCutsShrinkVolumeGeometrically) {
  int n = GetParam();
  Rng rng(4000 + static_cast<uint64_t>(n));
  Ellipsoid e = Ellipsoid::Ball(n, 1.0);
  double previous = e.LogVolumeUnnormalized();
  for (int k = 0; k < 30; ++k) {
    e.CutKeepBelow(RandomDirection(n, &rng), 0.0);
    double current = e.LogVolumeUnnormalized();
    EXPECT_LE(current, previous - 1.0 / (5.0 * n) + 1e-9);
    previous = current;
  }
}

TEST_P(EllipsoidPropertyTest, ShapeStaysSymmetricUnderManyCuts) {
  int n = GetParam();
  Rng rng(5000 + static_cast<uint64_t>(n));
  Ellipsoid e = Ellipsoid::Ball(n, 2.0);
  for (int k = 0; k < 100; ++k) {
    double alpha = rng.NextUniform(-1.0 / n, 0.2);
    if (rng.NextBernoulli(0.5)) {
      e.CutKeepBelow(RandomDirection(n, &rng), alpha);
    } else {
      e.CutKeepAbove(RandomDirection(n, &rng), -alpha);
    }
    ASSERT_TRUE(e.LooksHealthy()) << "after cut " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, EllipsoidPropertyTest, testing::Values(2, 3, 5, 10, 20),
                         [](const testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pdm
