#include <gtest/gtest.h>

#include <cmath>

#include "ellipsoid/ellipsoid.h"
#include "linalg/vector_ops.h"
#include "rng/rng.h"

namespace pdm {
namespace {

TEST(Ellipsoid, BallBasics) {
  Ellipsoid e = Ellipsoid::Ball(3, 2.0);
  EXPECT_EQ(e.dim(), 3);
  EXPECT_EQ(e.center(), Zeros(3));
  EXPECT_DOUBLE_EQ(e.shape()(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(e.shape()(0, 1), 0.0);
  EXPECT_TRUE(e.LooksHealthy());
}

TEST(Ellipsoid, SupportOfBallAlongAxis) {
  Ellipsoid e = Ellipsoid::Ball(2, 3.0);
  SupportInterval s = e.Support(BasisVector(2, 0));
  EXPECT_DOUBLE_EQ(s.lower, -3.0);
  EXPECT_DOUBLE_EQ(s.upper, 3.0);
  EXPECT_DOUBLE_EQ(s.midpoint, 0.0);
  EXPECT_DOUBLE_EQ(s.half_width, 3.0);
}

TEST(Ellipsoid, SupportScalesWithFeatureNorm) {
  Ellipsoid e = Ellipsoid::Ball(2, 1.0);
  // Support of θ ↦ xᵀθ over unit ball is ±‖x‖.
  Vector x{3.0, 4.0};
  SupportInterval s = e.Support(x);
  EXPECT_NEAR(s.upper, 5.0, 1e-12);
  EXPECT_NEAR(s.lower, -5.0, 1e-12);
}

TEST(Ellipsoid, SupportWithOffCenter) {
  Ellipsoid e(Vector{1.0, 2.0}, Matrix::ScaledIdentity(2, 1.0));
  SupportInterval s = e.Support(BasisVector(2, 1));
  EXPECT_DOUBLE_EQ(s.midpoint, 2.0);
  EXPECT_DOUBLE_EQ(s.lower, 1.0);
  EXPECT_DOUBLE_EQ(s.upper, 3.0);
}

TEST(Ellipsoid, CutAlphaSignConvention) {
  Ellipsoid e = Ellipsoid::Ball(2, 1.0);
  Vector x = BasisVector(2, 0);
  // Cut below the midpoint (cut value < mid) has positive α (deep toward the
  // kept lower side... the α convention is (mid − cut)/width).
  EXPECT_GT(e.CutAlpha(x, -0.5), 0.0);
  EXPECT_LT(e.CutAlpha(x, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.CutAlpha(x, 0.0), 0.0);
}

TEST(Ellipsoid, CentralCutKeepBelowMatchesKnownLownerJohn) {
  // Löwner–John ellipsoid of the half unit ball {θ₁ ≤ 0} in R²: center
  // (−1/3, 0), semi-axes 2/3 (along e₁) and 2/√3 (along e₂).
  Ellipsoid e = Ellipsoid::Ball(2, 1.0);
  e.CutKeepBelow(BasisVector(2, 0), 0.0);
  EXPECT_NEAR(e.center()[0], -1.0 / 3.0, 1e-12);
  EXPECT_NEAR(e.center()[1], 0.0, 1e-12);
  EXPECT_NEAR(e.shape()(0, 0), 4.0 / 9.0, 1e-12);
  EXPECT_NEAR(e.shape()(1, 1), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(e.shape()(0, 1), 0.0, 1e-12);
  EXPECT_TRUE(e.LooksHealthy());
}

TEST(Ellipsoid, CentralCutKeepAboveIsMirrorImage) {
  Ellipsoid below = Ellipsoid::Ball(2, 1.0);
  Ellipsoid above = Ellipsoid::Ball(2, 1.0);
  below.CutKeepBelow(BasisVector(2, 0), 0.0);
  above.CutKeepAbove(BasisVector(2, 0), 0.0);
  EXPECT_NEAR(above.center()[0], -below.center()[0], 1e-12);
  EXPECT_NEAR(above.shape()(0, 0), below.shape()(0, 0), 1e-12);
  EXPECT_NEAR(above.shape()(1, 1), below.shape()(1, 1), 1e-12);
}

TEST(Ellipsoid, CutKeepsTheCorrectSide) {
  Ellipsoid e = Ellipsoid::Ball(2, 1.0);
  Vector x = BasisVector(2, 0);
  e.CutKeepBelow(x, 0.0);
  // Points clearly on the kept side remain; excluded side points leave.
  EXPECT_TRUE(e.Contains(Vector{-0.5, 0.0}));
  EXPECT_FALSE(e.Contains(Vector{0.9, 0.0}));
}

TEST(Ellipsoid, DeepCutShrinksMoreThanCentral) {
  Ellipsoid central = Ellipsoid::Ball(3, 1.0);
  Ellipsoid deep = Ellipsoid::Ball(3, 1.0);
  Vector x = BasisVector(3, 0);
  central.CutKeepBelow(x, 0.0);
  deep.CutKeepBelow(x, 0.3);  // deep cut: keeps less than half
  EXPECT_LT(deep.LogVolumeUnnormalized(), central.LogVolumeUnnormalized());
}

TEST(Ellipsoid, ShallowCutWithinWindowShrinksAndEncloses) {
  // α ∈ (−1/n, 0): a shallow cut keeps more than half of E. The update is
  // still the Löwner–John ellipsoid of the kept region — smaller in volume
  // than E and enclosing every kept point.
  Ellipsoid e = Ellipsoid::Ball(2, 1.0);
  double before = e.LogVolumeUnnormalized();
  // Keep {θ₁ ≤ 0.3}: cut value 0.3 means α = −0.3 (shallow, > −1/2).
  e.CutKeepBelow(BasisVector(2, 0), -0.3);
  EXPECT_LT(e.LogVolumeUnnormalized(), before);
  // Points inside the kept region stay inside.
  EXPECT_TRUE(e.Contains(Vector{0.25, 0.9}));
  EXPECT_TRUE(e.Contains(Vector{-0.9, 0.0}));
}

TEST(Ellipsoid, BoundaryAlphaIsIdentityUpdate) {
  // a = −1/n: factor 1, coefficient 0 — the update is a no-op, matching the
  // fact that the minimal enclosing ellipsoid of a ≤ −1/n cut is E itself.
  Ellipsoid e = Ellipsoid::Ball(2, 1.0);
  e.CutKeepBelow(BasisVector(2, 0), -0.5);
  EXPECT_NEAR(e.shape()(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(e.shape()(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(e.center()[0], 0.0, 1e-12);
}

TEST(Ellipsoid, VolumeOfBall) {
  // LogVolumeUnnormalized = ½ log det(R²·I) = n·log R.
  Ellipsoid e = Ellipsoid::Ball(4, 2.0);
  EXPECT_NEAR(e.LogVolumeUnnormalized(), 4.0 * std::log(2.0), 1e-12);
}

TEST(Ellipsoid, ContainsBoundaryAndOutside) {
  Ellipsoid e = Ellipsoid::Ball(2, 1.0);
  EXPECT_TRUE(e.Contains(Vector{1.0, 0.0}));       // boundary
  EXPECT_TRUE(e.Contains(Vector{0.6, 0.6}));       // inside
  EXPECT_FALSE(e.Contains(Vector{0.8, 0.8}));      // outside
}

TEST(Ellipsoid, SmallestShapeEigenvalueOfBall) {
  Ellipsoid e = Ellipsoid::Ball(3, 2.0);
  EXPECT_NEAR(e.SmallestShapeEigenvalue(), 4.0, 1e-10);
}

TEST(Ellipsoid, AxisWidthsDescending) {
  Ellipsoid e = Ellipsoid::Ball(2, 1.0);
  e.CutKeepBelow(BasisVector(2, 0), 0.0);
  Vector widths = e.AxisWidths();
  ASSERT_EQ(widths.size(), 2u);
  EXPECT_NEAR(widths[0], 2.0 * 2.0 / std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(widths[1], 2.0 * 2.0 / 3.0, 1e-9);
  EXPECT_GE(widths[0], widths[1]);
}

TEST(Ellipsoid, SupportDirectionIsRawShapeImage) {
  // direction = A·x; the b of Algorithm 1 Line 5 is direction/half_width
  // (the cut overloads fold the normalization into their coefficients).
  Ellipsoid e = Ellipsoid::Ball(3, 2.0);
  Vector x{1.0, 2.0, 2.0};  // ‖x‖ = 3
  SupportInterval s = e.Support(x);
  ASSERT_EQ(s.direction.size(), 3u);
  // For A = 4I: A·x = 4x and half_width = √(4·9) = 6, so b = (2/3)·x.
  EXPECT_NEAR(s.direction[0], 4.0, 1e-12);
  EXPECT_NEAR(s.direction[1], 8.0, 1e-12);
  EXPECT_NEAR(s.direction[2], 8.0, 1e-12);
  EXPECT_NEAR(s.half_width, 6.0, 1e-12);
  EXPECT_NEAR(s.direction[0] / s.half_width, 2.0 / 3.0, 1e-12);
}

TEST(Ellipsoid, CachedDirectionCutMatchesFreshCut) {
  Rng rng(77);
  Ellipsoid by_vector = Ellipsoid::Ball(4, 1.5);
  Ellipsoid by_support = Ellipsoid::Ball(4, 1.5);
  for (int k = 0; k < 25; ++k) {
    Vector x = rng.GaussianVector(4);
    RescaleToNorm(&x, 1.0);
    // Keep |α| < 1/n = 0.25 so both branches stay in their validity windows.
    double alpha = rng.NextUniform(-0.2, 0.2);
    SupportInterval support = by_support.Support(x);
    if (support.half_width <= 0.0) continue;
    if (k % 2 == 0) {
      by_vector.CutKeepBelow(x, alpha);
      by_support.CutKeepBelow(support, alpha);
    } else {
      by_vector.CutKeepAbove(x, alpha);
      by_support.CutKeepAbove(support, alpha);
    }
    for (int i = 0; i < 4; ++i) {
      ASSERT_NEAR(by_vector.center()[static_cast<size_t>(i)],
                  by_support.center()[static_cast<size_t>(i)], 1e-12);
      for (int j = 0; j < 4; ++j) {
        ASSERT_NEAR(by_vector.shape()(i, j), by_support.shape()(i, j), 1e-12);
      }
    }
  }
}

TEST(EllipsoidDeathTest, RejectsCutBeyondValidityWindow) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Ellipsoid e = Ellipsoid::Ball(2, 1.0);
  // a < −1/n: the formula would produce a non-enclosing ellipsoid.
  EXPECT_DEATH(e.CutKeepBelow(BasisVector(2, 0), -0.9), "PDM_CHECK");
  // a ≥ 1: the kept region would be empty.
  EXPECT_DEATH(e.CutKeepBelow(BasisVector(2, 0), 1.0), "PDM_CHECK");
}

TEST(EllipsoidDeathTest, RejectsDimensionOne) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  // The GLS formulas are singular at n = 1; IntervalPricingEngine is the
  // supported path.
  EXPECT_DEATH(Ellipsoid::Ball(1, 1.0), "PDM_CHECK");
}

TEST(Ellipsoid, SupportOutParamMatchesByValueBitwise) {
  // The fill-in overload must be bit-identical to the by-value one, with the
  // direction buffer reused (and dirtied) across rounds and across cuts.
  Rng rng(303);
  Ellipsoid e = Ellipsoid::Ball(5, 2.0);
  SupportInterval reused;
  reused.direction.assign(11, -42.0);  // dirty + oversized on purpose
  for (int k = 0; k < 30; ++k) {
    Vector x = rng.GaussianVector(5);
    SupportInterval fresh = e.Support(x);
    e.Support(x, &reused);
    ASSERT_EQ(fresh.lower, reused.lower);
    ASSERT_EQ(fresh.upper, reused.upper);
    ASSERT_EQ(fresh.half_width, reused.half_width);
    ASSERT_EQ(fresh.midpoint, reused.midpoint);
    ASSERT_EQ(fresh.direction, reused.direction);
    if (reused.half_width > 0.0) {
      // Mutate the ellipsoid so later iterations probe different geometry.
      e.CutKeepBelow(reused, 0.05);
    }
  }
}

TEST(Ellipsoid, SupportBatchMatchesSequentialSupportBitwise) {
  // SupportBatch over a query-major panel must equal K sequential Support
  // calls bit for bit — the DESIGN.md §11 contract that lets the batched
  // serving path replace the scalar one without changing a single quote.
  // Cuts between rounds make later panels probe non-trivial geometry.
  Rng rng(606);
  for (int d : {2, 3, 20, 50}) {
    Ellipsoid e = Ellipsoid::Ball(d, 2.0);
    for (int k : {1, 2, 7, 32}) {
      Vector panel(static_cast<size_t>(k) * d);
      for (double& v : panel) v = rng.NextGaussian();
      std::vector<SupportInterval> batched(static_cast<size_t>(k));
      for (SupportInterval& s : batched) s.direction.assign(7, -42.0);  // dirty
      e.SupportBatch(panel.data(), k, batched.data());
      Vector x(static_cast<size_t>(d));
      SupportInterval expected;
      for (int j = 0; j < k; ++j) {
        x.assign(panel.begin() + static_cast<size_t>(j) * d,
                 panel.begin() + static_cast<size_t>(j + 1) * d);
        e.Support(x, &expected);
        const SupportInterval& got = batched[static_cast<size_t>(j)];
        ASSERT_EQ(expected.lower, got.lower) << "d=" << d << " k=" << k << " j=" << j;
        ASSERT_EQ(expected.upper, got.upper) << "d=" << d << " k=" << k << " j=" << j;
        ASSERT_EQ(expected.half_width, got.half_width)
            << "d=" << d << " k=" << k << " j=" << j;
        ASSERT_EQ(expected.midpoint, got.midpoint)
            << "d=" << d << " k=" << k << " j=" << j;
        ASSERT_EQ(expected.direction, got.direction)
            << "d=" << d << " k=" << k << " j=" << j;
      }
      // Refine the ellipsoid so the next k probes a different knowledge set.
      if (batched[0].half_width > 0.0) {
        e.CutKeepBelow(batched[0], 0.05);
      }
    }
  }
}

TEST(Ellipsoid, SupportBatchClearsDirectionOnDegenerateColumn) {
  // A collapsed direction inside a panel must degenerate exactly like the
  // scalar path: zero width, empty direction — while its neighbours in the
  // same panel stay untouched.
  Matrix a = Matrix::ScaledIdentity(2, 1.0);
  a(1, 1) = 0.0;
  Ellipsoid e(Zeros(2), a);
  Vector panel{1.0, 0.0,   // healthy column (probes the live axis)
               0.0, 1.0};  // degenerate column (probes the collapsed axis)
  std::vector<SupportInterval> out(2);
  out[1].direction.assign(4, 3.0);  // stale content from a previous round
  e.SupportBatch(panel.data(), 2, out.data());
  EXPECT_GT(out[0].half_width, 0.0);
  EXPECT_DOUBLE_EQ(out[1].half_width, 0.0);
  EXPECT_TRUE(out[1].direction.empty());
  SupportInterval scalar = e.Support(Vector{0.0, 1.0});
  EXPECT_EQ(scalar.lower, out[1].lower);
  EXPECT_EQ(scalar.upper, out[1].upper);
}

TEST(Ellipsoid, SupportOutParamClearsDirectionOnDegenerate) {
  Matrix a = Matrix::ScaledIdentity(2, 1.0);
  a(1, 1) = 0.0;
  Ellipsoid e(Zeros(2), a);
  SupportInterval reused;
  reused.direction.assign(4, 3.0);  // stale content from a previous round
  e.Support(BasisVector(2, 1), &reused);
  EXPECT_DOUBLE_EQ(reused.half_width, 0.0);
  EXPECT_TRUE(reused.direction.empty());
}

TEST(Ellipsoid, DegenerateDirectionYieldsZeroWidth) {
  // Shape with a numerically zero direction: Support reports zero width
  // instead of NaN.
  Matrix a = Matrix::ScaledIdentity(2, 1.0);
  a(1, 1) = 0.0;
  Ellipsoid e(Zeros(2), a);
  SupportInterval s = e.Support(BasisVector(2, 1));
  EXPECT_DOUBLE_EQ(s.half_width, 0.0);
  EXPECT_DOUBLE_EQ(s.lower, s.upper);
}

// ---------------------------------------------------------------- packed

TEST(EllipsoidPacked, BallBasicsAndAccessorGuards) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Ellipsoid e = Ellipsoid::PackedBall(3, 2.0);
  EXPECT_TRUE(e.packed());
  EXPECT_EQ(e.dim(), 3);
  EXPECT_DOUBLE_EQ(e.packed_shape().At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(e.DenseShape()(0, 1), 0.0);
  EXPECT_TRUE(e.LooksHealthy());
  EXPECT_DEATH(e.shape(), "PDM_CHECK");
  Ellipsoid dense = Ellipsoid::Ball(3, 2.0);
  EXPECT_FALSE(dense.packed());
  EXPECT_DEATH(dense.packed_shape(), "PDM_CHECK");
}

TEST(EllipsoidPacked, CutSequenceMatchesDenseUntilFirstSymmetrize) {
  // Within the dense mode's 32-cut symmetrization window the packed cut is
  // per-entry bit-identical to the dense one (the packed fused kernel runs
  // the dense kernel's upper-triangle expression in the same order), and
  // Support's quadratic form reduces over the same geometry at documented
  // tolerance. Past the first symmetrize the trajectories may diverge in
  // low-order bits — which is exactly why packed mode is opt-in.
  Rng rng(1111);
  for (int d : {2, 5, 20}) {
    Ellipsoid dense = Ellipsoid::Ball(d, 2.0);
    Ellipsoid packed = Ellipsoid::PackedBall(d, 2.0);
    for (int k = 0; k < 31; ++k) {
      Vector x = rng.GaussianVector(d);
      RescaleToNorm(&x, 1.0);
      SupportInterval sd = dense.Support(x);
      SupportInterval sp = packed.Support(x);
      ASSERT_NEAR(sp.half_width, sd.half_width,
                  1e-12 * std::max(1.0, sd.half_width));
      ASSERT_NEAR(sp.midpoint, sd.midpoint, 1e-12);
      if (sd.half_width <= 0.0 || sp.half_width <= 0.0) continue;
      double alpha = rng.NextUniform(-0.2, 0.2) / d;
      if (k % 2 == 0) {
        dense.CutKeepBelow(sd, alpha);
        packed.CutKeepBelow(sp, alpha);
      } else {
        dense.CutKeepAbove(sd, alpha);
        packed.CutKeepAbove(sp, alpha);
      }
      ASSERT_EQ(dense.cuts_since_symmetrize(), packed.cuts_since_symmetrize());
      for (int r = 0; r < d; ++r) {
        ASSERT_NEAR(packed.center()[static_cast<size_t>(r)],
                    dense.center()[static_cast<size_t>(r)], 1e-12)
            << "d=" << d << " k=" << k;
        for (int c = r; c < d; ++c) {
          ASSERT_NEAR(packed.packed_shape().At(r, c), dense.shape()(r, c),
                      1e-12 * std::max(1.0, std::abs(dense.shape()(r, c))))
              << "d=" << d << " k=" << k << " " << r << "," << c;
        }
      }
    }
  }
}

TEST(EllipsoidPacked, SupportBatchMatchesSequentialSupportBitwise) {
  // The §11 per-query bit-identity contract holds within packed mode too.
  Rng rng(1212);
  for (int d : {2, 3, 20, 50}) {
    Ellipsoid e = Ellipsoid::PackedBall(d, 2.0);
    for (int k : {1, 2, 7, 32}) {
      Vector panel(static_cast<size_t>(k) * d);
      for (double& v : panel) v = rng.NextGaussian();
      std::vector<SupportInterval> batched(static_cast<size_t>(k));
      for (SupportInterval& s : batched) s.direction.assign(7, -42.0);  // dirty
      e.SupportBatch(panel.data(), k, batched.data());
      Vector x(static_cast<size_t>(d));
      SupportInterval expected;
      for (int j = 0; j < k; ++j) {
        x.assign(panel.begin() + static_cast<size_t>(j) * d,
                 panel.begin() + static_cast<size_t>(j + 1) * d);
        e.Support(x, &expected);
        const SupportInterval& got = batched[static_cast<size_t>(j)];
        ASSERT_EQ(expected.lower, got.lower) << "d=" << d << " k=" << k << " j=" << j;
        ASSERT_EQ(expected.upper, got.upper) << "d=" << d << " k=" << k << " j=" << j;
        ASSERT_EQ(expected.half_width, got.half_width)
            << "d=" << d << " k=" << k << " j=" << j;
        ASSERT_EQ(expected.midpoint, got.midpoint)
            << "d=" << d << " k=" << k << " j=" << j;
        ASSERT_EQ(expected.direction, got.direction)
            << "d=" << d << " k=" << k << " j=" << j;
      }
      if (batched[0].half_width > 0.0) {
        e.CutKeepBelow(batched[0], 0.05);
      }
    }
  }
}

TEST(EllipsoidPacked, SnapshotRoundTripIsBitExact) {
  // Packed → dense snapshot → packed must resume bit-identically, including
  // the symmetrization phase; that is the property cold-tier eviction
  // (DESIGN.md §12) leans on.
  Rng rng(1313);
  Ellipsoid e = Ellipsoid::PackedBall(6, 1.5);
  for (int k = 0; k < 40; ++k) {  // crosses a 32-cut counter reset
    Vector x = rng.GaussianVector(6);
    RescaleToNorm(&x, 1.0);
    SupportInterval s = e.Support(x);
    if (s.half_width <= 0.0) continue;
    e.CutKeepBelow(s, 0.02);
  }
  Matrix snap_shape = e.DenseShape();
  Vector snap_center = e.center();
  Ellipsoid restored = Ellipsoid::FromSnapshotState(
      snap_center, snap_shape, e.cuts_since_symmetrize(), /*packed=*/true);
  EXPECT_TRUE(restored.packed());
  ASSERT_EQ(restored.cuts_since_symmetrize(), e.cuts_since_symmetrize());
  for (int r = 0; r < 6; ++r) {
    ASSERT_EQ(restored.center()[static_cast<size_t>(r)], e.center()[static_cast<size_t>(r)]);
    for (int c = r; c < 6; ++c) {
      ASSERT_EQ(restored.packed_shape().At(r, c), e.packed_shape().At(r, c));
    }
  }
  // And the re-encoded snapshot is byte-exact.
  Matrix again = restored.DenseShape();
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 6; ++c) {
      ASSERT_EQ(again(r, c), snap_shape(r, c));
    }
  }
  // Future cuts evolve both copies identically (same packed arithmetic).
  Vector x = rng.GaussianVector(6);
  RescaleToNorm(&x, 1.0);
  Ellipsoid twin = e;
  SupportInterval sa = twin.Support(x);
  SupportInterval sb = restored.Support(x);
  ASSERT_EQ(sa.half_width, sb.half_width);
  if (sa.half_width > 0.0) {
    twin.CutKeepBelow(sa, 0.02);
    restored.CutKeepBelow(sb, 0.02);
    for (int r = 0; r < 6; ++r) {
      for (int c = r; c < 6; ++c) {
        ASSERT_EQ(twin.packed_shape().At(r, c), restored.packed_shape().At(r, c));
      }
    }
  }
}

}  // namespace
}  // namespace pdm
