#include <gtest/gtest.h>

#include <cmath>

#include "data/airbnb_like.h"
#include "features/aggregation.h"
#include "features/airbnb_features.h"
#include "features/categorical.h"
#include "features/hashing.h"
#include "features/pca.h"
#include "features/scaler.h"
#include "rng/rng.h"

namespace pdm {
namespace {

// ---------------------------------------------------------------- aggregation

TEST(SortedPartition, PreservesTotalMass) {
  Rng rng(1);
  Vector comps = rng.UniformVector(97, 0.0, 2.0);
  for (int n : {1, 2, 7, 20, 97}) {
    Vector features = SortedPartitionFeatures(comps, n);
    ASSERT_EQ(static_cast<int>(features.size()), n);
    EXPECT_NEAR(Sum(features), Sum(comps), 1e-9) << "n=" << n;
  }
}

TEST(SortedPartition, SingleFeatureIsTotal) {
  Vector comps{3.0, 1.0, 2.0};
  EXPECT_EQ(SortedPartitionFeatures(comps, 1), (Vector{6.0}));
}

TEST(SortedPartition, FullDimIsSortedInput) {
  Vector comps{3.0, 1.0, 2.0};
  EXPECT_EQ(SortedPartitionFeatures(comps, 3), (Vector{1.0, 2.0, 3.0}));
}

TEST(SortedPartition, EqualSizedPartitionsSumCorrectly) {
  Vector comps{4.0, 3.0, 2.0, 1.0};  // sorted: 1 2 3 4
  EXPECT_EQ(SortedPartitionFeatures(comps, 2), (Vector{3.0, 7.0}));
}

TEST(SortedPartition, PartitionsNondecreasingForEqualSizes) {
  Rng rng(2);
  Vector comps = rng.UniformVector(100, 0.0, 1.0);
  Vector features = SortedPartitionFeatures(comps, 10);
  for (size_t i = 1; i < features.size(); ++i) {
    EXPECT_GE(features[i], features[i - 1]);
  }
}

// ---------------------------------------------------------------- scaler

TEST(L2Normalize, UnitNormAfter) {
  Vector x{3.0, 4.0};
  double norm = L2NormalizeInPlace(&x);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(Norm2(x), 1.0, 1e-12);
}

TEST(L2Normalize, ZeroVectorUntouched) {
  Vector x{0.0, 0.0};
  EXPECT_DOUBLE_EQ(L2NormalizeInPlace(&x), 0.0);
  EXPECT_EQ(x, (Vector{0.0, 0.0}));
}

TEST(StandardScaler, CentersAndScales) {
  Matrix rows = Matrix::FromRows({{1.0, 10.0}, {3.0, 10.0}});
  StandardScaler scaler;
  scaler.Fit(rows);
  EXPECT_DOUBLE_EQ(scaler.means()[0], 2.0);
  Vector z = scaler.Transform({3.0, 10.0});
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  // Constant column: centered but not divided by zero.
  EXPECT_DOUBLE_EQ(z[1], 0.0);
}

TEST(StandardScaler, TransformRowsMatchesTransform) {
  Rng rng(3);
  Matrix rows(20, 4);
  for (int r = 0; r < 20; ++r) {
    for (int c = 0; c < 4; ++c) rows(r, c) = rng.NextGaussian(5.0, 2.0);
  }
  StandardScaler scaler;
  scaler.Fit(rows);
  Matrix transformed = scaler.TransformRows(rows);
  Vector row5 = scaler.Transform(rows.Row(5));
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(transformed(5, c), row5[static_cast<size_t>(c)], 1e-12);
  }
}

// ---------------------------------------------------------------- categorical

TEST(Categorical, CodesInFirstSeenOrder) {
  CategoricalCodebook book;
  book.Fit({"b", "a", "b", "c"});
  EXPECT_EQ(book.num_categories(), 3);
  EXPECT_EQ(book.CodeOf("b"), 0);
  EXPECT_EQ(book.CodeOf("a"), 1);
  EXPECT_EQ(book.CodeOf("c"), 2);
  EXPECT_EQ(book.CategoryOf(1), "a");
}

TEST(Categorical, MissingAndUnseenAreMinusOne) {
  CategoricalCodebook book;
  book.Fit({"x", "", "y"});
  EXPECT_EQ(book.num_categories(), 2);
  EXPECT_EQ(book.CodeOf(""), -1);
  EXPECT_EQ(book.CodeOf("zzz"), -1);
}

TEST(Categorical, TransformVectorized) {
  CategoricalCodebook book;
  book.Fit({"a", "b"});
  EXPECT_EQ(book.Transform({"b", "", "a", "c"}), (std::vector<int>{1, -1, 0, -1}));
}

TEST(Categorical, OneHotInto) {
  CategoricalCodebook book;
  book.Fit({"a", "b", "c"});
  std::vector<double> out(5, 0.0);
  int width = book.OneHotInto("b", &out, 1);
  EXPECT_EQ(width, 3);
  EXPECT_EQ(out, (std::vector<double>{0, 0, 1, 0, 0}));
  // Missing contributes nothing.
  std::vector<double> out2(5, 0.0);
  book.OneHotInto("", &out2, 1);
  EXPECT_EQ(out2, (std::vector<double>{0, 0, 0, 0, 0}));
}

// ---------------------------------------------------------------- hashing

TEST(Hashing, DeterministicAcrossInstances) {
  HashingFeaturizer a(128), b(128);
  EXPECT_EQ(a.SlotOf(3, 42), b.SlotOf(3, 42));
}

TEST(Hashing, SlotsInRange) {
  HashingFeaturizer h(64);
  for (int f = 0; f < 10; ++f) {
    for (int64_t v = 0; v < 100; ++v) {
      int32_t slot = h.SlotOf(f, v);
      EXPECT_GE(slot, 0);
      EXPECT_LT(slot, 64);
    }
  }
}

TEST(Hashing, FeaturizeSortedAndAccumulates) {
  HashingFeaturizer h(16);
  std::vector<std::pair<int, int64_t>> fields;
  for (int f = 0; f < 8; ++f) fields.push_back({f, f * 7});
  SparseVector sv = h.Featurize(fields);
  for (size_t k = 1; k < sv.indices.size(); ++k) {
    EXPECT_GT(sv.indices[k], sv.indices[k - 1]);
  }
  // Total contribution equals the number of fields (collisions accumulate).
  EXPECT_NEAR(Sum(sv.values), 8.0, 1e-12);
}

TEST(Hashing, SignedHashProducesBothSigns) {
  HashingFeaturizer h(4096, /*signed_hash=*/true);
  int positive = 0, negative = 0;
  for (int64_t v = 0; v < 200; ++v) {
    SparseVector sv = h.Featurize({{0, v}});
    ASSERT_EQ(sv.nnz(), 1);
    (sv.values[0] > 0 ? positive : negative)++;
  }
  EXPECT_GT(positive, 50);
  EXPECT_GT(negative, 50);
}

TEST(Fnv1a64, KnownStability) {
  // Same content hashes identically; different content differs.
  EXPECT_EQ(Fnv1a64("3:42"), Fnv1a64("3:42"));
  EXPECT_NE(Fnv1a64("3:42"), Fnv1a64("3:43"));
}

// ---------------------------------------------------------------- pca

TEST(Pca, RecoversDominantDirection) {
  // Points along (1,1)/√2 with small orthogonal noise.
  Rng rng(4);
  Matrix rows(200, 2);
  for (int r = 0; r < 200; ++r) {
    double t = rng.NextGaussian(0.0, 3.0);
    double s = rng.NextGaussian(0.0, 0.1);
    rows(r, 0) = t + s;
    rows(r, 1) = t - s;
  }
  Pca pca;
  pca.Fit(rows, 1);
  Vector dir = pca.components().Row(0);
  EXPECT_NEAR(std::fabs(dir[0]), std::sqrt(0.5), 0.05);
  EXPECT_NEAR(std::fabs(dir[1]), std::sqrt(0.5), 0.05);
  EXPECT_GT(pca.explained_variance()[0], 8.0);
}

TEST(Pca, ComponentsOrthonormal) {
  Rng rng(5);
  Matrix rows(100, 5);
  for (int r = 0; r < 100; ++r) {
    for (int c = 0; c < 5; ++c) rows(r, c) = rng.NextGaussian();
  }
  Pca pca;
  pca.Fit(rows, 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double dot = Dot(pca.components().Row(i), pca.components().Row(j));
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(Pca, ExplainedVarianceDescending) {
  Rng rng(6);
  Matrix rows(80, 4);
  for (int r = 0; r < 80; ++r) {
    for (int c = 0; c < 4; ++c) rows(r, c) = rng.NextGaussian(0.0, 1.0 + c);
  }
  Pca pca;
  pca.Fit(rows, 4);
  for (size_t k = 1; k < pca.explained_variance().size(); ++k) {
    EXPECT_GE(pca.explained_variance()[k - 1], pca.explained_variance()[k]);
  }
}

TEST(Pca, TransformCentersData) {
  Matrix rows = Matrix::FromRows({{1.0, 0.0}, {3.0, 0.0}});
  Pca pca;
  pca.Fit(rows, 1);
  Vector projected = pca.Transform({2.0, 0.0});  // the mean
  EXPECT_NEAR(projected[0], 0.0, 1e-10);
}

// ---------------------------------------------------------------- airbnb 55

TEST(AirbnbFeatures, DimensionIs55) {
  AirbnbLikeConfig config;
  config.num_listings = 200;
  Rng rng(7);
  Table listings = GenerateAirbnbLikeListings(config, &rng);
  AirbnbFeatureSpace space;
  space.Fit(listings);
  Vector x = space.FeaturesForRow(listings, 0);
  EXPECT_EQ(x.size(), 55u);
  EXPECT_EQ(space.FeatureNames().size(), 55u);
  EXPECT_EQ(AirbnbFeatureSpace::kDim, 55);
}

TEST(AirbnbFeatures, BiasAndCodesLayout) {
  AirbnbLikeConfig config;
  config.num_listings = 300;
  Rng rng(8);
  Table listings = GenerateAirbnbLikeListings(config, &rng);
  AirbnbFeatureSpace space;
  space.Fit(listings);
  for (int64_t r = 0; r < 50; ++r) {
    Vector x = space.FeaturesForRow(listings, r);
    EXPECT_DOUBLE_EQ(x[0], 1.0);  // bias
    // Integer codes within the schema cardinalities.
    EXPECT_GE(x[1], 0.0);
    EXPECT_LT(x[1], 6.0);
    EXPECT_GE(x[2], 0.0);
    EXPECT_LT(x[2], 3.0);
    EXPECT_GE(x[3], 0.0);
    EXPECT_LT(x[3], 3.0);
    EXPECT_DOUBLE_EQ(x[1], std::floor(x[1]));  // codes are integers
    // First interaction column is city_code × room_code.
    EXPECT_DOUBLE_EQ(x[21], x[1] * x[2]);
  }
}

TEST(AirbnbFeatures, FeaturesAreDense) {
  // Paper-style integer-coded features: every booking request informs every
  // weight, so most columns should be non-zero on most rows.
  AirbnbLikeConfig config;
  config.num_listings = 500;
  Rng rng(12);
  Table listings = GenerateAirbnbLikeListings(config, &rng);
  AirbnbFeatureSpace space;
  space.Fit(listings);
  Matrix m = space.FeatureMatrix(listings);
  int64_t nonzero = 0;
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      if (m(r, c) != 0.0) ++nonzero;
    }
  }
  double density = static_cast<double>(nonzero) /
                   (static_cast<double>(m.rows()) * static_cast<double>(m.cols()));
  EXPECT_GT(density, 0.55);
}

TEST(AirbnbFeatures, MissingResponseRateImputedWithIndicator) {
  AirbnbLikeConfig config;
  config.num_listings = 3000;
  Rng rng(9);
  Table listings = GenerateAirbnbLikeListings(config, &rng);
  AirbnbFeatureSpace space;
  space.Fit(listings);
  bool found_missing = false;
  for (int64_t r = 0; r < listings.num_rows() && !found_missing; ++r) {
    if (std::isnan(listings.column("host_response_rate").DoubleAt(r))) {
      found_missing = true;
      Vector x = space.FeaturesForRow(listings, r);
      // Numeric block starts at 4; response at offset 4+4, indicator at 4+5.
      EXPECT_DOUBLE_EQ(x[9], 1.0);
      EXPECT_TRUE(std::isfinite(x[8]));
    }
  }
  EXPECT_TRUE(found_missing);
}

TEST(AirbnbFeatures, MatrixMatchesPerRow) {
  AirbnbLikeConfig config;
  config.num_listings = 50;
  Rng rng(10);
  Table listings = GenerateAirbnbLikeListings(config, &rng);
  AirbnbFeatureSpace space;
  space.Fit(listings);
  Matrix m = space.FeatureMatrix(listings);
  Vector x7 = space.FeaturesForRow(listings, 7);
  for (int c = 0; c < 55; ++c) {
    EXPECT_DOUBLE_EQ(m(7, c), x7[static_cast<size_t>(c)]);
  }
}

}  // namespace
}  // namespace pdm
