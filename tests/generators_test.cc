#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/stats.h"
#include "data/airbnb_like.h"
#include "data/avazu_like.h"
#include "data/movielens_like.h"
#include "rng/rng.h"

namespace pdm {
namespace {

// ---------------------------------------------------------------- movielens

TEST(MovieLensLike, OwnerPopulationShape) {
  MovieLensLikeConfig config;
  config.num_owners = 1000;
  Rng rng(1);
  auto data = MovieLensLikeRatings::Generate(config, &rng);
  ASSERT_EQ(data.num_owners(), 1000);
  RunningStats counts;
  for (const OwnerProfile& o : data.owners()) {
    EXPECT_GE(o.num_ratings, 1);
    EXPECT_GE(o.mean_rating, 0.5);
    EXPECT_LE(o.mean_rating, 5.0);
    EXPECT_GT(o.activity, 0.0);
    EXPECT_LE(o.activity, 1.0);
    counts.Add(static_cast<double>(o.num_ratings));
  }
  // Long-tailed: the max should far exceed the mean.
  EXPECT_GT(counts.max(), 4.0 * counts.mean());
}

TEST(MovieLensLike, OwnerDataInUnitRange) {
  MovieLensLikeConfig config;
  config.num_owners = 200;
  Rng rng(2);
  auto data = MovieLensLikeRatings::Generate(config, &rng);
  Vector d = data.OwnerData();
  ASSERT_EQ(d.size(), 200u);
  for (double v : d) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MovieLensLike, RatingsTableSchemaAndScale) {
  MovieLensLikeConfig config;
  config.num_owners = 50;
  Rng rng(3);
  auto data = MovieLensLikeRatings::Generate(config, &rng);
  Table ratings = data.RatingsTable(/*max_rows=*/500, &rng);
  EXPECT_LE(ratings.num_rows(), 500);
  EXPECT_GT(ratings.num_rows(), 0);
  for (int64_t r = 0; r < ratings.num_rows(); ++r) {
    double rating = ratings.column("rating").DoubleAt(r);
    EXPECT_GE(rating, 0.5);
    EXPECT_LE(rating, 5.0);
    // Half-star grid.
    EXPECT_NEAR(rating * 2.0, std::round(rating * 2.0), 1e-9);
  }
}

TEST(MovieLensLike, DeterministicGivenSeed) {
  MovieLensLikeConfig config;
  config.num_owners = 100;
  Rng rng1(7), rng2(7);
  auto a = MovieLensLikeRatings::Generate(config, &rng1);
  auto b = MovieLensLikeRatings::Generate(config, &rng2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.owners()[static_cast<size_t>(i)].num_ratings,
              b.owners()[static_cast<size_t>(i)].num_ratings);
  }
}

// ---------------------------------------------------------------- airbnb

TEST(AirbnbLike, SchemaComplete) {
  AirbnbLikeConfig config;
  config.num_listings = 500;
  Rng rng(4);
  Table t = GenerateAirbnbLikeListings(config, &rng);
  EXPECT_EQ(t.num_rows(), 500);
  for (const char* name :
       {"city", "room_type", "cancellation_policy", "accommodates", "bedrooms", "beds",
        "bathrooms", "wifi", "kitchen", "parking", "air_conditioning", "washer", "tv",
        "host_response_rate", "host_is_superhost", "instant_bookable", "number_of_reviews",
        "review_score", "occupancy_rate", "log_price"}) {
    EXPECT_TRUE(t.HasColumn(name)) << name;
  }
}

TEST(AirbnbLike, CategoricalValuesComeFromKnownSets) {
  AirbnbLikeConfig config;
  config.num_listings = 300;
  Rng rng(5);
  Table t = GenerateAirbnbLikeListings(config, &rng);
  std::set<std::string> cities(AirbnbCityNames().begin(), AirbnbCityNames().end());
  std::set<std::string> rooms(AirbnbRoomTypeNames().begin(), AirbnbRoomTypeNames().end());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_TRUE(cities.count(t.column("city").StringAt(r)));
    EXPECT_TRUE(rooms.count(t.column("room_type").StringAt(r)));
  }
}

TEST(AirbnbLike, PlantedModelOrdersRoomTypes) {
  // Entire homes should rent above shared rooms on average (log scale).
  AirbnbLikeConfig config;
  config.num_listings = 20000;
  Rng rng(6);
  Table t = GenerateAirbnbLikeListings(config, &rng);
  RunningStats entire, shared;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    const std::string& room = t.column("room_type").StringAt(r);
    double lp = t.column("log_price").DoubleAt(r);
    if (room == "entire_home") entire.Add(lp);
    if (room == "shared_room") shared.Add(lp);
  }
  ASSERT_GT(entire.count(), 100);
  ASSERT_GT(shared.count(), 100);
  EXPECT_GT(entire.mean(), shared.mean() + 0.5);
}

TEST(AirbnbLike, SomeHostResponseRatesMissing) {
  AirbnbLikeConfig config;
  config.num_listings = 5000;
  Rng rng(7);
  Table t = GenerateAirbnbLikeListings(config, &rng);
  int64_t missing = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (std::isnan(t.column("host_response_rate").DoubleAt(r))) ++missing;
  }
  EXPECT_GT(missing, 50);
  EXPECT_LT(missing, 500);
}

// ---------------------------------------------------------------- avazu

TEST(AvazuLike, FieldSpecsStable) {
  const auto& fields = AvazuLikeFields();
  ASSERT_EQ(fields.size(), 10u);
  EXPECT_EQ(fields[0].name, "banner_pos");
  for (const auto& f : fields) EXPECT_GT(f.cardinality, 0);
}

TEST(AvazuLike, ImpressionsRespectCardinalities) {
  AvazuLikeConfig config;
  Rng rng(8);
  AvazuLikeClickLog log(config, &rng);
  const auto& fields = AvazuLikeFields();
  for (int i = 0; i < 500; ++i) {
    AdImpression s = log.Next(&rng);
    ASSERT_EQ(s.fields.size(), fields.size());
    for (size_t f = 0; f < fields.size(); ++f) {
      EXPECT_EQ(s.fields[f].first, static_cast<int>(f));
      EXPECT_GE(s.fields[f].second, 0);
      EXPECT_LT(s.fields[f].second, fields[f].cardinality);
    }
    EXPECT_GT(s.ctr, 0.0);
    EXPECT_LT(s.ctr, 1.0);
    EXPECT_NEAR(s.ctr, 1.0 / (1.0 + std::exp(-s.logit)), 1e-12);
  }
}

TEST(AvazuLike, SignalWeightsUniqueAndCounted) {
  AvazuLikeConfig config;
  config.num_signal_pairs = 15;
  Rng rng(9);
  AvazuLikeClickLog log(config, &rng);
  EXPECT_EQ(log.signal_weights().size(), 15u);
  std::set<std::pair<int, int64_t>> seen;
  for (const auto& [pair, weight] : log.signal_weights()) {
    EXPECT_TRUE(seen.insert(pair).second) << "duplicate signal pair";
    EXPECT_NE(weight, 0.0);
  }
}

TEST(AvazuLike, ClickRateTracksPlantedCtr) {
  AvazuLikeConfig config;
  Rng rng(10);
  AvazuLikeClickLog log(config, &rng);
  RunningStats ctr, clicks;
  for (int i = 0; i < 50000; ++i) {
    AdImpression s = log.Next(&rng);
    ctr.Add(s.ctr);
    clicks.Add(s.clicked ? 1.0 : 0.0);
  }
  EXPECT_NEAR(clicks.mean(), ctr.mean(), 0.01);
}

}  // namespace
}  // namespace pdm
