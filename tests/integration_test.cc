#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "features/pca.h"
#include "features/scaler.h"
#include "market/airbnb_market.h"
#include "market/avazu_market.h"
#include "market/linear_market.h"
#include "market/simulator.h"
#include "pricing/baselines.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/generalized_engine.h"
#include "pricing/interval_engine.h"
#include "privacy/compensation.h"

namespace pdm {
namespace {

// ---------------------------------------------------------------- app 1

TEST(Integration, NoisyLinearQueryEndToEnd) {
  // Small-scale Fig. 4-style run: all four variants end with a low regret
  // ratio and the reserve variants never price below the reserve.
  int64_t rounds = 5000;
  int dim = 10;
  for (bool use_reserve : {false, true}) {
    Rng rng(1);
    NoisyLinearMarketConfig market_config;
    market_config.feature_dim = dim;
    market_config.num_owners = 300;
    NoisyLinearQueryStream stream(market_config, &rng);
    EllipsoidEngineConfig engine_config;
    engine_config.dim = dim;
    engine_config.horizon = rounds;
    engine_config.initial_radius = stream.RecommendedRadius();
    engine_config.use_reserve = use_reserve;
    EllipsoidPricingEngine engine(engine_config);
    SimulationOptions options;
    options.rounds = rounds;
    SimulationResult result = RunMarket(&stream, &engine, options, &rng);
    EXPECT_LT(result.tracker.regret_ratio(), 0.30) << "reserve=" << use_reserve;
    EXPECT_GT(result.tracker.sales(), rounds / 2);
  }
}

TEST(Integration, ReserveMitigatesColdStart) {
  // The cold-start claim (Section V-A at n = 20, t = 1e4: −13.16%): with the
  // reserve constraint the engine accumulates less cumulative regret than
  // the pure version on the identical workload. Paired over seeds; the
  // horizon must be long enough for the effect to dominate per-seed noise
  // (at a few hundred rounds the two are statistically tied).
  int64_t rounds = 3000;
  int dim = 20;
  double pure_total = 0.0, reserve_total = 0.0;
  int reserve_wins = 0;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    double regret[2] = {0.0, 0.0};
    for (bool use_reserve : {false, true}) {
      Rng rng(42 + seed);
      NoisyLinearMarketConfig market_config;
      market_config.feature_dim = dim;
      market_config.num_owners = 300;
      NoisyLinearQueryStream stream(market_config, &rng);
      EllipsoidEngineConfig engine_config;
      engine_config.dim = dim;
      engine_config.horizon = rounds;
      engine_config.initial_radius = stream.RecommendedRadius();
      engine_config.use_reserve = use_reserve;
      EllipsoidPricingEngine engine(engine_config);
      SimulationOptions options;
      options.rounds = rounds;
      SimulationResult result = RunMarket(&stream, &engine, options, &rng);
      regret[use_reserve ? 1 : 0] = result.tracker.cumulative_regret();
    }
    pure_total += regret[0];
    reserve_total += regret[1];
    if (regret[1] < regret[0]) ++reserve_wins;
  }
  EXPECT_LT(reserve_total, pure_total);
  EXPECT_GE(reserve_wins, 3) << "reserve should win on nearly every paired seed";
}

TEST(Integration, OneDimensionalMatchesPaperNarrative) {
  // Fig. 4(a): with n = 1 the reserve is 1, the market value √2, and after
  // the first exploratory price the reserve never binds again.
  int64_t rounds = 100;
  Rng rng(2);
  NoisyLinearMarketConfig market_config;
  market_config.feature_dim = 1;
  market_config.num_owners = 50;
  NoisyLinearQueryStream stream(market_config, &rng);
  IntervalEngineConfig config;
  config.theta_min = 0.0;
  config.theta_max = 2.0;  // knowledge interval [0, 2] as in Section V-A
  config.horizon = rounds;
  config.use_reserve = true;
  IntervalPricingEngine engine(config);
  SimulationOptions options;
  options.rounds = rounds;
  SimulationResult result = RunMarket(&stream, &engine, options, &rng);
  // Bisection quickly brackets √2; nearly every round sells. The steady
  // ratio floor is ε = log₂(T)/T ≈ 0.066 under-pricing per round (≈4.7% of
  // v = √2) plus the early bisection losses.
  EXPECT_GT(result.tracker.sales(), 90);
  EXPECT_LT(result.tracker.regret_ratio(), 0.08);
  EXPECT_LE(engine.theta_upper() - engine.theta_lower(), 0.2);
  EXPECT_LE(engine.theta_lower(), std::sqrt(2.0) + 1e-9);
  EXPECT_GE(engine.theta_upper(), std::sqrt(2.0) - 1e-9);
}

// ---------------------------------------------------------------- app 2

TEST(Integration, AccommodationRentalEndToEnd) {
  // n = 55 needs ≈2n(n+1)·ln(width/ε) ≈ 25k rounds of bisection under the
  // honest ball prior (see bench_fig5b), so a short smoke run is assessed on
  // sanity plus a tight-prior run that reaches the converged regime.
  AirbnbMarketConfig market_config;
  market_config.num_listings = 8000;
  market_config.log_reserve_ratio = 0.6;
  Rng rng(3);
  AirbnbMarket market = BuildAirbnbMarket(market_config, &rng);

  for (bool tight_prior : {false, true}) {
    EllipsoidEngineConfig base_config;
    base_config.dim = AirbnbFeatureSpace::kDim;
    base_config.horizon = market_config.num_listings;
    // The paper's full-scale threshold (n²/74111); the short-horizon default
    // n²/8000 ≈ 0.38 would allow ±46% conservative under-pricing.
    base_config.epsilon = 0.04;
    if (tight_prior) {
      // Paper-final regime: the broker's prior is the offline fit itself
      // with a small uncertainty ball. The radius must put the initial width
      // along x (2R‖x‖ ≈ 0.04) within ~e of ε, else bisection's ~50%
      // rejection losses dominate regardless of how small the accepted-round
      // losses are (see bench_fig5b header).
      base_config.initial_center = market.theta;
      base_config.initial_radius = 0.003;
    } else {
      base_config.initial_center = market.recommended_center;
      base_config.initial_radius = market.recommended_radius;
    }
    base_config.use_reserve = true;
    GeneralizedPricingEngine engine(std::make_unique<EllipsoidPricingEngine>(base_config),
                                    std::make_shared<ExpLink>(),
                                    std::make_shared<IdentityFeatureMap>());
    ReplayQueryStream stream(&market.rounds);
    SimulationOptions options;
    options.rounds = market_config.num_listings;
    options.series_stride = market_config.num_listings / 4;
    SimulationResult result = RunMarket(&stream, &engine, options, &rng);
    if (tight_prior) {
      // Operates at/near the ε-floor (paper-final regime) and beats the
      // risk-averse baseline.
      EXPECT_LT(result.tracker.regret_ratio(), 0.12);
      EXPECT_LT(result.tracker.regret_ratio(), result.tracker.baseline_regret_ratio());
    } else {
      // Honest prior: mid-exploration, ratio below the ~55% bisection level
      // and improving (tail below the first-quarter level).
      EXPECT_LT(result.tracker.regret_ratio(), 0.60);
      const auto& series = result.tracker.series();
      ASSERT_GE(series.size(), 4u);
      double tail = TailRegretRatio(series[series.size() - 2], series.back());
      EXPECT_LT(tail, series.front().regret_ratio + 1e-9);
    }
  }
}

// ---------------------------------------------------------------- app 3

TEST(Integration, ImpressionPricingEndToEnd) {
  AvazuLikeConfig data_config;
  Rng rng(4);
  AvazuLikeClickLog log(data_config, &rng);
  AvazuMarketConfig market_config;
  market_config.hashed_dim = 64;
  market_config.train_samples = 40000;
  market_config.eval_samples = 4000;
  AvazuMarket market = BuildAvazuMarket(market_config, log, &rng);
  ASSERT_GT(market.nonzero_weights, 2);

  for (bool dense : {false, true}) {
    int64_t rounds = dense ? 12000 : 6000;  // dense dims are tiny, so cheap
    AvazuQueryStream stream(&log, &market, market_config.hashed_dim, dense);
    EllipsoidEngineConfig base_config;
    base_config.dim = stream.feature_dim();
    base_config.horizon = rounds;
    base_config.initial_radius = market.recommended_radius;
    base_config.use_reserve = false;  // pure version, as in Fig. 5(c)
    GeneralizedPricingEngine engine(std::make_unique<EllipsoidPricingEngine>(base_config),
                                    std::make_shared<LogisticLink>(market.bias),
                                    std::make_shared<IdentityFeatureMap>());
    SimulationOptions options;
    options.rounds = rounds;
    options.series_stride = rounds / 4;
    SimulationResult result = RunMarket(&stream, &engine, options, &rng);
    // Dense converges within the horizon; sparse is still eliminating
    // zero-weight coordinates (the Fig. 5(c) sparse-vs-dense gap).
    EXPECT_LT(result.tracker.regret_ratio(), dense ? 0.45 : 0.80) << "dense=" << dense;
    EXPECT_GT(result.tracker.sales(), 0);
    if (dense) {
      const auto& series = result.tracker.series();
      ASSERT_GE(series.size(), 4u);
      double tail = TailRegretRatio(series[series.size() - 2], series.back());
      EXPECT_LT(tail, result.tracker.regret_ratio() + 1e-9);
      EXPECT_LT(tail, 0.15);
    }
  }
}

// ------------------------------------------------------- PCA features §II-B

TEST(Integration, PcaCompensationFeaturesPriceComparably) {
  // Section II-B offers PCA over the raw per-owner compensations as the
  // alternative to sorted-partition aggregation when the owner count is
  // prohibitively high. Build both pipelines over the same query stream and
  // verify PCA features support low-regret pricing too.
  const int kOwners = 60;
  const int kDim = 8;
  const int64_t kRounds = 4000;

  Rng rng(31);
  CompensationLedger ledger = CompensationLedger::Random(kOwners, 1.0, 1.0, &rng);
  QueryGeneratorConfig query_config;
  query_config.num_owners = kOwners;
  NoisyLinearQueryGenerator queries(query_config);

  // Fit PCA on a calibration batch of compensation profiles.
  Matrix calibration(200, kOwners);
  for (int r = 0; r < 200; ++r) {
    Vector comp = ledger.Compensations(queries.Next(&rng));
    for (int c = 0; c < kOwners; ++c) calibration(r, c) = comp[static_cast<size_t>(c)];
  }
  Pca pca;
  pca.Fit(calibration, kDim);
  EXPECT_GT(pca.explained_variance()[0], pca.explained_variance()[kDim - 1]);

  // Market value is linear in [bias, PCA features] — PCA projections are
  // centered (signed), so a bias coordinate carries the positive price level.
  const int kEngineDim = kDim + 1;
  Vector theta = rng.GaussianVector(kEngineDim);
  RescaleToNorm(&theta, 1.0);
  theta[0] = 3.0;  // price level on the bias coordinate

  EllipsoidEngineConfig engine_config;
  engine_config.dim = kEngineDim;
  engine_config.horizon = kRounds;
  engine_config.initial_radius = 2.0 * Norm2(theta);
  engine_config.use_reserve = true;
  EllipsoidPricingEngine engine(engine_config);

  RegretTracker tracker;
  for (int64_t t = 0; t < kRounds; ++t) {
    Vector comp = ledger.Compensations(queries.Next(&rng));
    Vector projected = pca.Transform(comp);
    L2NormalizeInPlace(&projected);
    MarketRound round;
    round.features = Zeros(kEngineDim);
    round.features[0] = 1.0;
    for (int c = 0; c < kDim; ++c) {
      round.features[static_cast<size_t>(c + 1)] = projected[static_cast<size_t>(c)];
    }
    round.value = Dot(round.features, theta);
    round.reserve = 0.6 * round.value;
    PostedPrice posted = engine.PostPrice(round.features, round.reserve);
    bool accepted = !posted.certain_no_sale && posted.price <= round.value;
    engine.Observe(accepted);
    tracker.Observe(round, posted, accepted);
  }
  EXPECT_LT(tracker.regret_ratio(), 0.30);
  EXPECT_LT(tracker.regret_ratio(), tracker.baseline_regret_ratio() + 0.25);
  EXPECT_TRUE(engine.knowledge_set().Contains(theta, 1e-6));
}

// ---------------------------------------------------------------- baseline

TEST(Integration, RiskAverseBaselineMatchesCompanionAccounting) {
  // Running the explicit ReservePriceBaseline engine must reproduce the
  // tracker's built-in companion-baseline numbers exactly.
  int64_t rounds = 2000;
  Rng rng(5);
  NoisyLinearMarketConfig market_config;
  market_config.feature_dim = 5;
  market_config.num_owners = 100;
  NoisyLinearQueryStream stream(market_config, &rng);
  ReservePriceBaseline baseline(5);
  SimulationOptions options;
  options.rounds = rounds;
  SimulationResult result = RunMarket(&stream, &baseline, options, &rng);
  EXPECT_NEAR(result.tracker.cumulative_regret(),
              result.tracker.baseline_cumulative_regret(), 1e-9);
}

}  // namespace
}  // namespace pdm
