#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "pricing/interval_engine.h"
#include "rng/rng.h"

namespace pdm {
namespace {

IntervalEngineConfig BaseConfig() {
  IntervalEngineConfig config;
  config.theta_min = 0.0;
  config.theta_max = 2.0;
  config.horizon = 100;
  config.use_reserve = true;
  return config;
}

TEST(IntervalEngine, DefaultEpsilonTheorem3) {
  EXPECT_NEAR(DefaultIntervalEpsilon(1024, 0.0), 10.0 / 1024.0, 1e-12);
  // The 4δ clamp keeps the conservative switch inside the refinable regime.
  EXPECT_DOUBLE_EQ(DefaultIntervalEpsilon(1024, 1.0), 4.0);
}

TEST(IntervalEngine, FirstPriceIsBisectionOfSupport) {
  IntervalPricingEngine engine(BaseConfig());
  // x = 1: support [0, 2], midpoint 1; reserve below midpoint.
  PostedPrice posted = engine.PostPrice({1.0}, 0.5);
  EXPECT_TRUE(posted.exploratory);
  EXPECT_DOUBLE_EQ(posted.price, 1.0);
}

TEST(IntervalEngine, ReserveLiftsExploratoryPrice) {
  IntervalPricingEngine engine(BaseConfig());
  PostedPrice posted = engine.PostPrice({1.0}, 1.5);
  EXPECT_TRUE(posted.exploratory);
  EXPECT_DOUBLE_EQ(posted.price, 1.5);  // max(q, mid) = q
}

TEST(IntervalEngine, RejectShrinksUpperBound) {
  IntervalPricingEngine engine(BaseConfig());
  engine.PostPrice({1.0}, 0.0);
  engine.Observe(false);  // θ* ≤ 1
  EXPECT_DOUBLE_EQ(engine.theta_upper(), 1.0);
  EXPECT_DOUBLE_EQ(engine.theta_lower(), 0.0);
}

TEST(IntervalEngine, AcceptRaisesLowerBound) {
  IntervalPricingEngine engine(BaseConfig());
  engine.PostPrice({1.0}, 0.0);
  engine.Observe(true);  // θ* ≥ 1
  EXPECT_DOUBLE_EQ(engine.theta_lower(), 1.0);
  EXPECT_DOUBLE_EQ(engine.theta_upper(), 2.0);
}

TEST(IntervalEngine, BisectionConvergesToTheta) {
  IntervalEngineConfig config = BaseConfig();
  config.horizon = 10000;
  IntervalPricingEngine engine(config);
  double theta = 1.37;
  for (int t = 0; t < 200; ++t) {
    PostedPrice posted = engine.PostPrice({1.0}, 0.0);
    engine.Observe(posted.price <= theta);
    ASSERT_LE(engine.theta_lower(), theta + 1e-12);
    ASSERT_GE(engine.theta_upper(), theta - 1e-12);
  }
  EXPECT_LE(engine.theta_upper() - engine.theta_lower(),
            std::max(engine.epsilon(), 1e-9));
}

TEST(IntervalEngine, NegativeFeatureFlipsSupport) {
  IntervalPricingEngine engine(BaseConfig());
  ValueInterval interval = engine.EstimateValueInterval({-1.0});
  EXPECT_DOUBLE_EQ(interval.lower, -2.0);
  EXPECT_DOUBLE_EQ(interval.upper, 0.0);
}

TEST(IntervalEngine, NegativeFeatureCutsCorrectSide) {
  IntervalPricingEngine engine(BaseConfig());
  // x = −1: support [−2, 0], mid −1. Reject at p = −1 ⇒ −θ* ≤ −1 ⇒ θ* ≥ 1.
  PostedPrice posted = engine.PostPrice({-1.0}, -10.0);
  EXPECT_DOUBLE_EQ(posted.price, -1.0);
  engine.Observe(false);
  EXPECT_DOUBLE_EQ(engine.theta_lower(), 1.0);
}

TEST(IntervalEngine, SkipWhenReserveAboveUpperBound) {
  IntervalPricingEngine engine(BaseConfig());
  PostedPrice posted = engine.PostPrice({1.0}, 5.0);  // upper = 2 < 5
  EXPECT_TRUE(posted.certain_no_sale);
  EXPECT_DOUBLE_EQ(posted.price, 5.0);
  engine.Observe(false);
  EXPECT_EQ(engine.counters().skipped_rounds, 1);
  // Knowledge set untouched.
  EXPECT_DOUBLE_EQ(engine.theta_lower(), 0.0);
  EXPECT_DOUBLE_EQ(engine.theta_upper(), 2.0);
}

TEST(IntervalEngine, ConservativePriceNeverCuts) {
  IntervalEngineConfig config = BaseConfig();
  config.epsilon = 10.0;  // everything is conservative
  IntervalPricingEngine engine(config);
  PostedPrice posted = engine.PostPrice({1.0}, 0.5);
  EXPECT_FALSE(posted.exploratory);
  // Conservative price is max(q, p̲ − δ) = max(0.5, 0) = 0.5.
  EXPECT_DOUBLE_EQ(posted.price, 0.5);
  engine.Observe(true);
  EXPECT_DOUBLE_EQ(engine.theta_lower(), 0.0);
  EXPECT_DOUBLE_EQ(engine.theta_upper(), 2.0);
  EXPECT_EQ(engine.counters().cuts_applied, 0);
  EXPECT_EQ(engine.counters().conservative_rounds, 1);
}

TEST(IntervalEngine, UncertaintyBufferWidensCuts) {
  IntervalEngineConfig config = BaseConfig();
  config.delta = 0.1;
  IntervalPricingEngine engine(config);
  engine.PostPrice({1.0}, 0.0);
  engine.Observe(false);  // infer θ* ≤ p + δ = 1.1
  EXPECT_DOUBLE_EQ(engine.theta_upper(), 1.1);
  engine.PostPrice({1.0}, 0.0);
  engine.Observe(true);  // infer θ* ≥ p − δ
  EXPECT_NEAR(engine.theta_lower(), 0.55 - 0.1, 1e-12);
}

TEST(IntervalEngine, ContradictoryFeedbackDiscarded) {
  IntervalEngineConfig config = BaseConfig();
  config.theta_min = 1.0;
  config.theta_max = 1.2;
  config.epsilon = 1e-6;  // force exploratory
  IntervalPricingEngine engine(config);
  PostedPrice posted = engine.PostPrice({1.0}, 0.0);
  EXPECT_TRUE(posted.exploratory);
  // Price ≈ 1.1; a reject implies θ* ≤ 1.1 — fine. Simulate impossible
  // feedback by first shrinking: accept tells θ* ≥ 1.1.
  engine.Observe(true);
  double lo = engine.theta_lower();
  // Now feature −1: support [−1.2, −lo], mid below −1.1; reject at the mid
  // price implies θ* ≥ 1.15-ish — could contradict if noise were adversarial.
  // Directly verify the guard: a cut that would invert the interval is
  // dropped rather than applied.
  engine.PostPrice({-1.0}, -10.0);
  engine.Observe(false);  // -θ ≤ p+δ ⇒ θ ≥ −p: consistent here, applied
  EXPECT_GE(engine.theta_upper(), engine.theta_lower());
  EXPECT_GE(lo, 1.0);
}

TEST(IntervalEngine, ZeroFeatureIsInformationless) {
  IntervalPricingEngine engine(BaseConfig());
  PostedPrice posted = engine.PostPrice({0.0}, -1.0);
  // Support degenerates to [0,0]: width 0 ⇒ conservative.
  EXPECT_FALSE(posted.exploratory);
  engine.Observe(true);
  EXPECT_DOUBLE_EQ(engine.theta_lower(), 0.0);
  EXPECT_DOUBLE_EQ(engine.theta_upper(), 2.0);
}

TEST(IntervalEngine, CountersConsistent) {
  IntervalPricingEngine engine(BaseConfig());
  for (int t = 0; t < 20; ++t) {
    PostedPrice posted = engine.PostPrice({1.0}, 0.2);
    engine.Observe(posted.price <= 1.3);
  }
  const EngineCounters& c = engine.counters();
  EXPECT_EQ(c.rounds, 20);
  EXPECT_EQ(c.rounds, c.exploratory_rounds + c.conservative_rounds + c.skipped_rounds);
}

/// Property sweep over (use_reserve, delta): invariants that must hold for
/// every interval-engine configuration.
class IntervalPropertyTest
    : public testing::TestWithParam<std::tuple<bool, double>> {};

TEST_P(IntervalPropertyTest, ThetaAlwaysBracketedUnderBoundedNoise) {
  auto [use_reserve, delta] = GetParam();
  IntervalEngineConfig config;
  config.theta_min = 0.0;
  config.theta_max = 3.0;
  config.horizon = 5000;
  config.delta = delta;
  config.use_reserve = use_reserve;
  IntervalPricingEngine engine(config);
  const double theta = 1.83;
  Rng rng(17);
  for (int t = 0; t < 1000; ++t) {
    double x = rng.NextUniform(-1.0, 1.0);
    double noise = delta > 0.0 ? rng.NextUniform(-delta, delta) : 0.0;
    double value = x * theta + noise;
    double reserve = 0.5 * value;
    PostedPrice posted = engine.PostPrice({x}, reserve);
    bool accepted = !posted.certain_no_sale && posted.price <= value;
    engine.Observe(accepted);
    ASSERT_LE(engine.theta_lower(), theta + 1e-9) << "round " << t;
    ASSERT_GE(engine.theta_upper(), theta - 1e-9) << "round " << t;
    if (use_reserve) {
      ASSERT_GE(posted.price, reserve - 1e-12);
    }
  }
}

TEST_P(IntervalPropertyTest, IntervalWidthNeverGrows) {
  auto [use_reserve, delta] = GetParam();
  IntervalEngineConfig config;
  config.theta_min = -1.0;
  config.theta_max = 2.0;
  config.horizon = 2000;
  config.delta = delta;
  config.use_reserve = use_reserve;
  IntervalPricingEngine engine(config);
  Rng rng(23);
  double previous_width = engine.theta_upper() - engine.theta_lower();
  for (int t = 0; t < 500; ++t) {
    double x = rng.NextUniform(-1.0, 1.0);
    PostedPrice posted = engine.PostPrice({x}, rng.NextUniform(-0.5, 0.5));
    engine.Observe(!posted.certain_no_sale && rng.NextBernoulli(0.5));
    double width = engine.theta_upper() - engine.theta_lower();
    ASSERT_LE(width, previous_width + 1e-12);
    previous_width = width;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, IntervalPropertyTest,
    testing::Combine(testing::Values(false, true), testing::Values(0.0, 0.05)),
    [](const testing::TestParamInfo<std::tuple<bool, double>>& info) {
      return std::string(std::get<0>(info.param) ? "reserve" : "pure") +
             (std::get<1>(info.param) > 0.0 ? "_uncertain" : "_exact");
    });

TEST(IntervalEngine, NameReflectsConfig) {
  IntervalEngineConfig config = BaseConfig();
  EXPECT_EQ(IntervalPricingEngine(config).name(), "reserve-1d");
  config.use_reserve = false;
  config.delta = 0.1;
  EXPECT_EQ(IntervalPricingEngine(config).name(), "pure-1d+uncertainty");
}

}  // namespace
}  // namespace pdm
