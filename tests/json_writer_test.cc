// common/json_writer: escaping edge cases, nesting discipline, non-finite
// doubles, and round-trip-exact number formatting.

#include "common/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace pdm {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
  EXPECT_EQ(JsonEscape(""), "");
  EXPECT_EQ(JsonEscape("reserve+uncertainty/n=20"), "reserve+uncertainty/n=20");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("C:\\path\\file"), "C:\\\\path\\\\file");
}

TEST(JsonEscape, EscapesNamedControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape("a\bb"), "a\\bb");
  EXPECT_EQ(JsonEscape("a\fb"), "a\\fb");
}

TEST(JsonEscape, EscapesRemainingControlRangeAsUnicode) {
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
  EXPECT_EQ(JsonEscape(std::string("a\x1fz")), "a\\u001fz");
  // NUL inside a std::string is data, not a terminator.
  EXPECT_EQ(JsonEscape(std::string("a\0z", 3)), "a\\u0000z");
}

TEST(JsonEscape, LeavesUtf8BytesAlone) {
  // "ε" is U+03B5, two UTF-8 bytes above the control range.
  EXPECT_EQ(JsonEscape("\xce\xb5 = 0.01"), "\xce\xb5 = 0.01");
}

TEST(JsonWriter, WritesNestedDocument) {
  std::ostringstream os;
  {
    JsonWriter json(&os, /*indent=*/0);
    json.BeginObject();
    json.Field("schema", "pdm.run.v1");
    json.Field("count", 2);
    json.Key("results");
    json.BeginArray();
    json.BeginObject();
    json.Field("ok", true);
    json.EndObject();
    json.Null();
    json.EndArray();
    json.EndObject();
    EXPECT_TRUE(json.done());
  }
  EXPECT_EQ(os.str(),
            "{\"schema\":\"pdm.run.v1\",\"count\":2,\"results\":"
            "[{\"ok\":true},null]}");
}

TEST(JsonWriter, IndentedOutputIsStable) {
  std::ostringstream os;
  JsonWriter json(&os);
  json.BeginObject();
  json.Field("a", 1);
  json.Key("b");
  json.BeginArray();
  json.Int(1);
  json.Int(2);
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonWriter, EmptyContainersStayOnOneLine) {
  std::ostringstream os;
  JsonWriter json(&os);
  json.BeginObject();
  json.Key("empty_array");
  json.BeginArray();
  json.EndArray();
  json.Key("empty_object");
  json.BeginObject();
  json.EndObject();
  json.EndObject();
  EXPECT_EQ(os.str(), "{\n  \"empty_array\": [],\n  \"empty_object\": {}\n}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter json(&os, 0);
  json.BeginArray();
  json.Double(std::numeric_limits<double>::quiet_NaN());
  json.Double(std::numeric_limits<double>::infinity());
  json.Double(-std::numeric_limits<double>::infinity());
  json.Double(1.5);
  json.EndArray();
  EXPECT_EQ(os.str(), "[null,null,null,1.5]");
}

TEST(JsonWriter, DoublesRoundTripExactly) {
  for (double value : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 123456789.123456}) {
    std::ostringstream os;
    JsonWriter json(&os, 0);
    json.Double(value);
    double parsed = std::stod(os.str());
    EXPECT_EQ(parsed, value) << os.str();
  }
}

TEST(JsonWriter, IntegerWidths) {
  std::ostringstream os;
  JsonWriter json(&os, 0);
  json.BeginArray();
  json.Int(std::numeric_limits<int64_t>::min());
  json.Int(std::numeric_limits<int64_t>::max());
  json.UInt(std::numeric_limits<uint64_t>::max());
  json.EndArray();
  EXPECT_EQ(os.str(),
            "[-9223372036854775808,9223372036854775807,18446744073709551615]");
}

TEST(JsonWriter, KeysAreEscaped) {
  std::ostringstream os;
  JsonWriter json(&os, 0);
  json.BeginObject();
  json.Field("we\"ird\nkey", 1);
  json.EndObject();
  EXPECT_EQ(os.str(), "{\"we\\\"ird\\nkey\":1}");
}

TEST(JsonWriter, TopLevelScalarIsADocument) {
  std::ostringstream os;
  JsonWriter json(&os, 0);
  EXPECT_FALSE(json.done());
  json.String("alone");
  EXPECT_TRUE(json.done());
  EXPECT_EQ(os.str(), "\"alone\"");
}

}  // namespace
}  // namespace pdm
