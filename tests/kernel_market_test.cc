#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "market/kernel_market.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/generalized_engine.h"

namespace pdm {
namespace {

KernelMarketConfig SmallConfig() {
  KernelMarketConfig config;
  config.input_dim = 3;
  config.num_landmarks = 6;
  config.reserve_fraction = 0.5;
  return config;
}

TEST(KernelMarket, StreamInvariants) {
  Rng rng(1);
  KernelQueryStream stream(SmallConfig(), &rng);
  EXPECT_EQ(stream.feature_map()->output_dim(), 6);
  EXPECT_EQ(stream.feature_map()->input_dim(), 3);
  EXPECT_GT(stream.RecommendedRadius(), 0.0);
  for (int t = 0; t < 100; ++t) {
    MarketRound round = stream.Next(&rng);
    ASSERT_EQ(round.features.size(), 3u);
    for (double f : round.features) {
      EXPECT_GE(f, -1.0);
      EXPECT_LT(f, 1.0);
    }
    EXPECT_NEAR(round.reserve, 0.5 * round.value, 1e-12);
  }
}

TEST(KernelMarket, ValueMatchesKernelExpansion) {
  Rng rng(2);
  KernelQueryStream stream(SmallConfig(), &rng);
  for (int t = 0; t < 20; ++t) {
    MarketRound round = stream.Next(&rng);
    Vector phi = stream.feature_map()->Map(round.features);
    EXPECT_NEAR(round.value, Dot(phi, stream.theta()), 1e-12);
  }
}

TEST(KernelMarket, ValuesMostlyPositive) {
  Rng rng(3);
  KernelQueryStream stream(SmallConfig(), &rng);
  int positive = 0;
  for (int t = 0; t < 500; ++t) {
    if (stream.Next(&rng).value > 0.0) ++positive;
  }
  EXPECT_GT(positive, 450);
}

TEST(KernelMarket, KernelizedEngineConvergesWhereLinearCannot) {
  // The Section IV-A reduction: pricing over φ(x) recovers low regret on a
  // value surface that is non-linear in the raw features; a linear engine on
  // x stays far worse on the same stream.
  int64_t rounds = 6000;
  KernelMarketConfig config = SmallConfig();

  Rng rng_a(7);
  KernelQueryStream kernel_stream(config, &rng_a);
  EllipsoidEngineConfig base_config;
  base_config.dim = config.num_landmarks;
  base_config.horizon = rounds;
  base_config.initial_radius = kernel_stream.RecommendedRadius();
  GeneralizedPricingEngine kernel_engine(
      std::make_unique<EllipsoidPricingEngine>(base_config),
      std::make_shared<IdentityLink>(),
      std::make_shared<KernelFeatureMap>(kernel_stream.feature_map()));
  SimulationOptions options;
  options.rounds = rounds;
  SimulationResult kernel_result =
      RunMarket(&kernel_stream, &kernel_engine, options, &rng_a);

  Rng rng_b(7);  // identical workload
  KernelQueryStream linear_stream(config, &rng_b);
  EllipsoidEngineConfig linear_config;
  linear_config.dim = config.input_dim;
  linear_config.horizon = rounds;
  linear_config.initial_radius = 4.0 * linear_stream.RecommendedRadius();
  EllipsoidPricingEngine linear_engine(linear_config);
  SimulationResult linear_result =
      RunMarket(&linear_stream, &linear_engine, options, &rng_b);

  EXPECT_LT(kernel_result.tracker.regret_ratio(), 0.25);
  EXPECT_LT(kernel_result.tracker.regret_ratio(),
            0.5 * linear_result.tracker.regret_ratio());
}

TEST(KernelMarket, ThetaRetainedUnderKernelPricing) {
  // The z-space invariant survives the kernel feature map: with noiseless
  // feedback the base engine's knowledge set always contains θ*.
  KernelMarketConfig config = SmallConfig();
  Rng rng(11);
  KernelQueryStream stream(config, &rng);
  EllipsoidEngineConfig base_config;
  base_config.dim = config.num_landmarks;
  base_config.horizon = 2000;
  base_config.initial_radius = stream.RecommendedRadius();
  auto base = std::make_unique<EllipsoidPricingEngine>(base_config);
  EllipsoidPricingEngine* base_view = base.get();
  GeneralizedPricingEngine engine(std::move(base), std::make_shared<IdentityLink>(),
                                  std::make_shared<KernelFeatureMap>(stream.feature_map()));
  for (int t = 0; t < 500; ++t) {
    MarketRound round = stream.Next(&rng);
    PostedPrice posted = engine.PostPrice(round.features, round.reserve);
    engine.Observe(!posted.certain_no_sale && posted.price <= round.value);
    ASSERT_TRUE(base_view->knowledge_set().Contains(stream.theta(), 1e-6))
        << "round " << t;
  }
}

}  // namespace
}  // namespace pdm
