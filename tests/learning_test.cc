#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "learning/ftrl.h"
#include "learning/kernels.h"
#include "learning/linear_regression.h"
#include "learning/metrics.h"
#include "linalg/cholesky.h"
#include "rng/rng.h"

namespace pdm {
namespace {

// ---------------------------------------------------------------- OLS

TEST(LinearRegression, ExactRecoveryNoiseless) {
  Rng rng(1);
  Vector theta{2.0, -1.0, 0.5};
  Matrix x(50, 3);
  Vector y(50);
  for (int r = 0; r < 50; ++r) {
    Vector row = rng.GaussianVector(3);
    for (int c = 0; c < 3; ++c) x(r, c) = row[static_cast<size_t>(c)];
    y[static_cast<size_t>(r)] = Dot(row, theta);
  }
  LinearRegression ols;
  ASSERT_TRUE(ols.Fit(x, y));
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(ols.weights()[static_cast<size_t>(c)], theta[static_cast<size_t>(c)], 1e-6);
  }
  EXPECT_NEAR(ols.MeanSquaredError(x, y), 0.0, 1e-10);
}

TEST(LinearRegression, NoisyRecoveryMseMatchesNoise) {
  Rng rng(2);
  Vector theta{1.0, 2.0};
  double sigma = 0.3;
  Matrix x(5000, 2);
  Vector y(5000);
  for (int r = 0; r < 5000; ++r) {
    Vector row = rng.GaussianVector(2);
    for (int c = 0; c < 2; ++c) x(r, c) = row[static_cast<size_t>(c)];
    y[static_cast<size_t>(r)] = Dot(row, theta) + rng.NextGaussian(0.0, sigma);
  }
  LinearRegression ols;
  ASSERT_TRUE(ols.Fit(x, y));
  EXPECT_NEAR(ols.weights()[0], 1.0, 0.05);
  EXPECT_NEAR(ols.weights()[1], 2.0, 0.05);
  EXPECT_NEAR(ols.MeanSquaredError(x, y), sigma * sigma, 0.02);
}

TEST(LinearRegression, RidgeShrinksWeights) {
  Rng rng(3);
  Matrix x(30, 2);
  Vector y(30);
  for (int r = 0; r < 30; ++r) {
    Vector row = rng.GaussianVector(2);
    for (int c = 0; c < 2; ++c) x(r, c) = row[static_cast<size_t>(c)];
    y[static_cast<size_t>(r)] = 3.0 * row[0];
  }
  LinearRegression ols(LinearRegressionConfig{1e-8});
  LinearRegression heavy(LinearRegressionConfig{1000.0});
  ASSERT_TRUE(ols.Fit(x, y));
  ASSERT_TRUE(heavy.Fit(x, y));
  EXPECT_LT(std::fabs(heavy.weights()[0]), std::fabs(ols.weights()[0]));
}

TEST(LinearRegression, HandlesCollinearColumnsWithRidge) {
  // Two identical columns: singular normal matrix; ridge makes it solvable.
  Matrix x = Matrix::FromRows({{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}});
  Vector y{2.0, 4.0, 6.0};
  LinearRegression ols(LinearRegressionConfig{1e-6});
  ASSERT_TRUE(ols.Fit(x, y));
  EXPECT_NEAR(ols.Predict({1.0, 1.0}), 2.0, 1e-3);
}

// ---------------------------------------------------------------- FTRL

SparseVector OneHot(int32_t index) {
  SparseVector sv;
  sv.Append(index, 1.0);
  return sv;
}

TEST(Ftrl, SigmoidSafeAtExtremes) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_GT(Sigmoid(-1000.0), 0.0 - 1e-300);
}

TEST(Ftrl, LearnsSeparableSignal) {
  // Coordinate 3 ⇒ click, coordinate 7 ⇒ no click.
  FtrlConfig config;
  config.l1 = 0.5;
  FtrlProximal learner(16, config);
  Rng rng(4);
  for (int i = 0; i < 4000; ++i) {
    if (rng.NextBernoulli(0.5)) {
      learner.Train(OneHot(3), rng.NextBernoulli(0.9));
    } else {
      learner.Train(OneHot(7), rng.NextBernoulli(0.1));
    }
  }
  EXPECT_GT(learner.Predict(OneHot(3)), 0.7);
  EXPECT_LT(learner.Predict(OneHot(7)), 0.3);
  EXPECT_GT(learner.WeightAt(3), 0.0);
  EXPECT_LT(learner.WeightAt(7), 0.0);
}

TEST(Ftrl, L1InducesSparsity) {
  // Coordinates 0 and 1 carry strong, frequent signal; the 62 others are
  // rare with balanced labels, so their |z| random walk stays within λ₁ —
  // the regime in which FTRL's lazy thresholding produces exact zeros.
  FtrlConfig config;
  config.l1 = 3.0;
  FtrlProximal learner(64, config);
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    learner.Train(OneHot(0), rng.NextBernoulli(0.95));
    learner.Train(OneHot(1), rng.NextBernoulli(0.05));
  }
  // Each noise coordinate sees 8 alternating labels: gradient sums ≈ 0.
  for (int32_t coord = 2; coord < 64; ++coord) {
    for (int rep = 0; rep < 8; ++rep) {
      learner.Train(OneHot(coord), rep % 2 == 0);
    }
  }
  int nnz = learner.NonZeroCount();
  EXPECT_GE(nnz, 2);
  EXPECT_LE(nnz, 12);  // L1 zeroes out nearly all rare/balanced coordinates
  EXPECT_NE(learner.WeightAt(0), 0.0);
  EXPECT_NE(learner.WeightAt(1), 0.0);
}

TEST(Ftrl, BiasAbsorbsBaseRate) {
  // With a 10% base rate on featureless examples, the intercept should go
  // negative while all regular weights stay exactly zero.
  FtrlConfig config;
  config.use_bias = true;
  config.l1 = 1.0;
  FtrlProximal learner(8, config);
  Rng rng(6);
  SparseVector empty;
  for (int i = 0; i < 5000; ++i) {
    learner.Train(empty, rng.NextBernoulli(0.1));
  }
  EXPECT_LT(learner.bias(), -1.0);
  EXPECT_EQ(learner.NonZeroCount(), 0);
  EXPECT_NEAR(learner.Predict(empty), 0.1, 0.03);
}

TEST(Ftrl, BiasDisabledByDefault) {
  FtrlProximal learner(4, FtrlConfig{});
  Rng rng(7);
  SparseVector empty;
  for (int i = 0; i < 100; ++i) learner.Train(empty, rng.NextBernoulli(0.1));
  EXPECT_DOUBLE_EQ(learner.bias(), 0.0);
}

TEST(Ftrl, WeightsVectorMatchesWeightAt) {
  FtrlProximal learner(8, FtrlConfig{});
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    learner.Train(OneHot(static_cast<int32_t>(rng.NextUint64(8))), rng.NextBernoulli(0.4));
  }
  Vector w = learner.Weights();
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(w[static_cast<size_t>(i)], learner.WeightAt(i));
  }
  EXPECT_EQ(learner.examples_seen(), 500);
}

TEST(Ftrl, PredictionsAreProbabilities) {
  FtrlProximal learner(8, FtrlConfig{});
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    SparseVector x;
    x.Append(0, 1.0);
    x.Append(5, 1.0);
    double p = learner.Train(x, rng.NextBernoulli(0.5));
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

// ---------------------------------------------------------------- kernels

TEST(Kernels, LinearKernelIsDot) {
  LinearKernel k;
  EXPECT_DOUBLE_EQ(k({1.0, 2.0}, {3.0, 4.0}), 11.0);
}

TEST(Kernels, RbfBasics) {
  RbfKernel k(0.5);
  EXPECT_DOUBLE_EQ(k({1.0, 2.0}, {1.0, 2.0}), 1.0);
  EXPECT_NEAR(k({0.0}, {2.0}), std::exp(-0.5 * 4.0), 1e-12);
  // Symmetry.
  EXPECT_DOUBLE_EQ(k({0.5, 1.5}, {2.0, 0.0}), k({2.0, 0.0}, {0.5, 1.5}));
}

TEST(Kernels, PolynomialKernel) {
  PolynomialKernel k(2, 1.0);
  EXPECT_DOUBLE_EQ(k({1.0, 1.0}, {1.0, 1.0}), 9.0);  // (2+1)²
}

TEST(Kernels, RbfGramIsPositiveSemiDefinite) {
  Rng rng(8);
  Matrix landmarks(6, 3);
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 3; ++c) landmarks(r, c) = rng.NextGaussian();
  }
  LandmarkKernelMap map(std::make_shared<RbfKernel>(1.0), landmarks);
  Matrix gram = map.LandmarkGram();
  // PSD ⇔ Cholesky succeeds after a hair of jitter.
  for (int i = 0; i < 6; ++i) gram(i, i) += 1e-10;
  Matrix l(0, 0);
  EXPECT_TRUE(CholeskyFactor(gram, &l));
}

TEST(Kernels, LandmarkMapDimensionsAndValues) {
  Matrix landmarks = Matrix::FromRows({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}});
  LandmarkKernelMap map(std::make_shared<LinearKernel>(), landmarks);
  EXPECT_EQ(map.input_dim(), 2);
  EXPECT_EQ(map.output_dim(), 3);
  Vector phi = map.Map({2.0, 3.0});
  EXPECT_EQ(phi, (Vector{0.0, 2.0, 3.0}));
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, MseKnownValue) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1.0, 2.0}, {0.0, 4.0}), (1.0 + 4.0) / 2.0);
}

TEST(Metrics, LogLossPerfectAndWorst) {
  EXPECT_NEAR(LogLoss({1.0, 0.0}, {true, false}), 0.0, 1e-9);
  EXPECT_GT(LogLoss({0.0, 1.0}, {true, false}), 10.0);
  // Uninformative prediction: −log(0.5).
  EXPECT_NEAR(LogLoss({0.5}, {true}), std::log(2.0), 1e-12);
}

TEST(Metrics, BinaryAccuracy) {
  EXPECT_DOUBLE_EQ(BinaryAccuracy({0.9, 0.2, 0.6, 0.4}, {true, false, false, true}), 0.5);
}

}  // namespace
}  // namespace pdm
