#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/packed_sym_matrix.h"
#include "linalg/sparse_vector.h"
#include "linalg/vector_ops.h"
#include "rng/rng.h"

namespace pdm {
namespace {

// ---------------------------------------------------------------- vectors

TEST(VectorOps, ZerosOnesBasis) {
  EXPECT_EQ(Zeros(3), (Vector{0, 0, 0}));
  EXPECT_EQ(Ones(2), (Vector{1, 1}));
  EXPECT_EQ(BasisVector(3, 1), (Vector{0, 1, 0}));
}

TEST(VectorOps, DotAndNorms) {
  Vector a{1, 2, 3};
  Vector b{4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(Norm2(a), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(NormInf(b), 6.0);
  EXPECT_DOUBLE_EQ(Sum(a), 6.0);
}

TEST(VectorOps, ScaleAxpyAddSub) {
  Vector a{1, 2};
  ScaleInPlace(&a, 2.0);
  EXPECT_EQ(a, (Vector{2, 4}));
  Vector y{1, 1};
  AxpyInPlace(3.0, a, &y);
  EXPECT_EQ(y, (Vector{7, 13}));
  EXPECT_EQ(Add(a, y), (Vector{9, 17}));
  EXPECT_EQ(Sub(y, a), (Vector{5, 9}));
  EXPECT_EQ(Scaled(a, 0.5), (Vector{1, 2}));
}

TEST(VectorOps, RescaleToNorm) {
  Vector a{3, 4};
  double old_norm = RescaleToNorm(&a, 10.0);
  EXPECT_DOUBLE_EQ(old_norm, 5.0);
  EXPECT_NEAR(Norm2(a), 10.0, 1e-12);
  Vector zero{0, 0};
  EXPECT_DOUBLE_EQ(RescaleToNorm(&zero, 5.0), 0.0);
  EXPECT_EQ(zero, (Vector{0, 0}));
}

// ---------------------------------------------------------------- matrices

TEST(Matrix, IdentityAndAccess) {
  Matrix id = Matrix::ScaledIdentity(3, 2.5);
  EXPECT_DOUBLE_EQ(id(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(id.Trace(), 7.5);
}

TEST(Matrix, FromRowsAndRow) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m.Row(1), (Vector{3, 4}));
}

TEST(Matrix, MatVec) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.MatVec({1, 1}), (Vector{3, 7}));
  EXPECT_EQ(m.MatTVec({1, 1}), (Vector{4, 6}));
}

TEST(Matrix, QuadraticForm) {
  Matrix m = Matrix::FromRows({{2, 1}, {1, 3}});
  // [1 2]·A·[1 2]ᵀ = 2 + 2 + 2 + 12 = 18.
  EXPECT_DOUBLE_EQ(m.QuadraticForm({1, 2}), 18.0);
}

TEST(Matrix, AddRankOne) {
  Matrix m(2, 2);
  m.AddRankOne(2.0, {1, 3});
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 18.0);
}

TEST(Matrix, SymmetrizeAndAsymmetry) {
  Matrix m(2, 2);
  m(0, 1) = 1.0;
  m(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(m.MaxAsymmetry(), 2.0);
  m.Symmetrize();
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.MaxAsymmetry(), 0.0);
}

TEST(Matrix, MatMulAndTranspose) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  Matrix at = a.Transposed();
  EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m = Matrix::FromRows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(Matrix, ScaleInPlace) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  m.Scale(10.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 40.0);
}

TEST(Matrix, FusedScaleRankOneMatchesTwoStep) {
  // The fused hot-path update must equal AddRankOne followed by Scale.
  Matrix fused = Matrix::FromRows({{4, 1, 0}, {1, 3, 1}, {0, 1, 5}});
  Matrix two_step = fused;
  Vector b{0.5, -1.0, 2.0};
  double factor = 1.31;
  double coef = 0.42;
  fused.FusedScaleRankOne(factor, coef, b);
  two_step.AddRankOne(-coef, b);
  two_step.Scale(factor);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(fused(r, c), two_step(r, c), 1e-12) << r << "," << c;
    }
  }
}

TEST(Matrix, FusedScaleRankOnePreservesSymmetryToUlps) {
  Matrix m = Matrix::ScaledIdentity(8, 3.0);
  Vector b{0.1, 0.2, -0.3, 0.4, -0.5, 0.6, 0.7, -0.8};
  for (int k = 0; k < 1000; ++k) {
    m.FusedScaleRankOne(1.001, 0.01, b);
  }
  EXPECT_LT(m.MaxAsymmetry(), 1e-9 * std::max(1.0, m.FrobeniusNorm()));
}

// ---------------------------------------------------------------- sparse

TEST(SparseVector, AppendAndDot) {
  SparseVector sv;
  sv.Append(1, 2.0);
  sv.Append(4, -1.0);
  EXPECT_EQ(sv.nnz(), 2);
  Vector dense{1, 10, 100, 1000, 10000};
  EXPECT_DOUBLE_EQ(sv.Dot(dense), 20.0 - 10000.0);
  EXPECT_DOUBLE_EQ(sv.SquaredNorm(), 5.0);
}

TEST(SparseVector, ToDense) {
  SparseVector sv;
  sv.Append(0, 1.5);
  sv.Append(3, 2.5);
  EXPECT_EQ(sv.ToDense(4), (Vector{1.5, 0, 0, 2.5}));
}

// ------------------------------------- in-place / by-value equivalence

TEST(VectorOpsInPlace, IntoVariantsMatchByValueBitwise) {
  Rng rng(101);
  for (int n : {1, 3, 4, 7, 16, 33}) {
    Vector a = rng.GaussianVector(n);
    Vector b = rng.GaussianVector(n);
    // Deliberately dirty, wrongly-sized reused buffer.
    Vector out(static_cast<size_t>(n) + 5, -7.0);
    AddInto(a, b, &out);
    EXPECT_EQ(out, Add(a, b)) << "n=" << n;
    SubInto(a, b, &out);
    EXPECT_EQ(out, Sub(a, b)) << "n=" << n;
    ScaledInto(a, 1.75, &out);
    EXPECT_EQ(out, Scaled(a, 1.75)) << "n=" << n;
  }
}

TEST(VectorOpsInPlace, IntoVariantsAllowAliasing) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{0.5, -1.5, 4.0};
  Vector expected = Add(a, b);
  AddInto(a, b, &a);  // out aliases a
  EXPECT_EQ(a, expected);
}

TEST(MatrixInPlace, MatVecIntoMatchesByValueBitwise) {
  Rng rng(202);
  for (int n : {2, 5, 8, 13, 20}) {
    Matrix m(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) m(r, c) = rng.NextGaussian();
    }
    Vector x = rng.GaussianVector(n);
    Vector y(3, 99.0);  // dirty reused buffer
    m.MatVecInto(x, &y);
    EXPECT_EQ(y, m.MatVec(x)) << "n=" << n;
    m.MatTVecInto(x, &y);
    EXPECT_EQ(y, m.MatTVec(x)) << "n=" << n;
  }
}

TEST(MatrixPanel, MatPanelIntoMatchesMatVecBitwise) {
  // The batched kernel must produce each query's result bit-identical to a
  // standalone MatVecInto pass — the register-blocking may only interleave
  // the independent per-query reduction chains, never reassociate within
  // one. Dims cover non-multiples of 4 (scalar-tail coverage) and k covers
  // the blocked path, the remainder path, and their mix.
  Rng rng(404);
  for (int n : {2, 3, 5, 8, 13, 20, 50}) {
    Matrix m(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) m(r, c) = rng.NextGaussian();
    }
    for (int k : {1, 2, 4, 7, 32}) {
      Vector panel(static_cast<size_t>(k) * n);
      for (double& v : panel) v = rng.NextGaussian();
      Vector y(static_cast<size_t>(k) * n, 99.0);  // dirty reused buffer
      m.MatPanelInto(panel.data(), k, y.data());
      Vector x(static_cast<size_t>(n));
      Vector expected;
      for (int j = 0; j < k; ++j) {
        x.assign(panel.begin() + static_cast<size_t>(j) * n,
                 panel.begin() + static_cast<size_t>(j + 1) * n);
        m.MatVecInto(x, &expected);
        for (int r = 0; r < n; ++r) {
          ASSERT_EQ(y[static_cast<size_t>(j) * n + r], expected[static_cast<size_t>(r)])
              << "n=" << n << " k=" << k << " j=" << j << " r=" << r;
        }
      }
    }
  }
}

TEST(MatrixPanel, ZeroQueriesIsANoOp) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  m.MatPanelInto(nullptr, 0, nullptr);  // k = 0 must not touch the pointers
}

TEST(VectorOps, RawDotMatchesVectorDotBitwise) {
  Rng rng(505);
  for (int n : {1, 3, 4, 7, 20, 50}) {
    Vector a = rng.GaussianVector(n);
    Vector b = rng.GaussianVector(n);
    ASSERT_EQ(Dot(a.data(), b.data(), a.size()), Dot(a, b)) << "n=" << n;
  }
}

TEST(MatrixInPlace, ReusedBufferStableAcrossCalls) {
  // Second call into the same buffer must not depend on the first's content.
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  Vector y;
  m.MatVecInto({1, 1}, &y);
  EXPECT_EQ(y, (Vector{3, 7}));
  m.MatVecInto({2, 0}, &y);
  EXPECT_EQ(y, (Vector{2, 6}));
}

// ---------------------------------------------------------------- packed

// Random symmetric dense matrix plus its packed twin.
Matrix RandomSymmetric(int n, Rng* rng) {
  Matrix m(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = r; c < n; ++c) {
      double v = rng->NextGaussian();
      m(r, c) = v;
      m(c, r) = v;
    }
  }
  return m;
}

TEST(PackedSymMatrix, IndexMappingAndAccessors) {
  PackedSymMatrix p(3);
  EXPECT_EQ(p.dim(), 3);
  EXPECT_EQ(p.packed_size(), static_cast<size_t>(6));
  p.At(0, 2) = 5.0;
  EXPECT_DOUBLE_EQ(p.At(2, 0), 5.0);  // either triangle maps to one slot
  p.At(1, 1) = -2.0;
  EXPECT_DOUBLE_EQ(p.At(1, 1), -2.0);
  PackedSymMatrix id = PackedSymMatrix::ScaledIdentity(3, 2.5);
  EXPECT_DOUBLE_EQ(id.At(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(id.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(id.Trace(), 7.5);
}

TEST(PackedSymMatrix, DenseRoundTripIsBitExact) {
  Rng rng(606);
  for (int n : {2, 3, 5, 8, 13, 20}) {
    Matrix dense = RandomSymmetric(n, &rng);
    PackedSymMatrix packed = PackedSymMatrix::FromDense(dense);
    Matrix back = packed.ToDense();
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        ASSERT_EQ(back(r, c), dense(r, c)) << "n=" << n << " " << r << "," << c;
      }
    }
    // Pack → dense → pack must reproduce the stored doubles exactly: the
    // property the snapshot codec leans on (shapes serialize dense).
    PackedSymMatrix again = PackedSymMatrix::FromDense(back);
    for (size_t i = 0; i < packed.packed_size(); ++i) {
      ASSERT_EQ(again.data()[i], packed.data()[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(PackedSymMatrix, MatVecMatchesDenseWithinTolerance) {
  // The packed mat-vec accumulates in a different order than the dense
  // row-dot kernel, so the contract is tolerance, not bits (the header
  // documents this). Tolerance is relative to the result magnitude.
  Rng rng(707);
  for (int n : {2, 3, 5, 8, 13, 20, 50}) {
    Matrix dense = RandomSymmetric(n, &rng);
    PackedSymMatrix packed = PackedSymMatrix::FromDense(dense);
    Vector x = rng.GaussianVector(n);
    Vector yp(1, 99.0);
    Vector yd(1, 99.0);
    packed.MatVecInto(x, &yp);
    dense.MatVecInto(x, &yd);
    ASSERT_EQ(yp.size(), static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      double scale = std::max(1.0, std::abs(yd[static_cast<size_t>(r)]));
      ASSERT_NEAR(yp[static_cast<size_t>(r)], yd[static_cast<size_t>(r)], 1e-12 * scale)
          << "n=" << n << " r=" << r;
    }
    double qp = packed.QuadraticForm(x);
    double qd = dense.QuadraticForm(x);
    ASSERT_NEAR(qp, qd, 1e-12 * std::max(1.0, std::abs(qd))) << "n=" << n;
  }
}

TEST(PackedSymMatrix, MatPanelMatchesMatVecBitwise) {
  // Same contract as the dense panel kernel: batching may interleave the
  // independent per-query chains but never reassociate within one, so each
  // query is bit-identical to a standalone packed mat-vec. Dims and k cover
  // the 4-wide blocked path, the remainder path, and their mix.
  Rng rng(808);
  for (int n : {2, 3, 5, 8, 13, 20, 50}) {
    PackedSymMatrix packed = PackedSymMatrix::FromDense(RandomSymmetric(n, &rng));
    for (int k : {1, 2, 4, 7, 32}) {
      Vector panel(static_cast<size_t>(k) * n);
      for (double& v : panel) v = rng.NextGaussian();
      Vector y(static_cast<size_t>(k) * n, 99.0);  // dirty reused buffer
      packed.MatPanelInto(panel.data(), k, y.data());
      Vector x(static_cast<size_t>(n));
      Vector expected;
      for (int j = 0; j < k; ++j) {
        x.assign(panel.begin() + static_cast<size_t>(j) * n,
                 panel.begin() + static_cast<size_t>(j + 1) * n);
        packed.MatVecInto(x, &expected);
        for (int r = 0; r < n; ++r) {
          ASSERT_EQ(y[static_cast<size_t>(j) * n + r], expected[static_cast<size_t>(r)])
              << "n=" << n << " k=" << k << " j=" << j << " r=" << r;
        }
      }
    }
  }
}

TEST(PackedSymMatrix, ZeroQueriesIsANoOp) {
  PackedSymMatrix p = PackedSymMatrix::ScaledIdentity(2, 1.0);
  p.MatPanelInto(nullptr, 0, nullptr);  // k = 0 must not touch the pointers
}

TEST(PackedSymMatrix, FusedScaleRankOneMatchesDenseUpperTriangleBitwise) {
  // The packed cut update applies factor·(a_rc − (coef·b_r)·b_c) per stored
  // entry — the same expression, in the same order, as the dense kernel's
  // upper triangle. That makes a packed cut sequence bit-identical to a
  // dense one until the dense side's first 32-cut re-symmetrization.
  Rng rng(909);
  for (int n : {2, 3, 5, 8, 13, 20}) {
    Matrix dense = RandomSymmetric(n, &rng);
    // Shift to strong diagonal dominance so repeated cuts stay tame.
    for (int r = 0; r < n; ++r) dense(r, r) += 4.0 * n;
    PackedSymMatrix packed = PackedSymMatrix::FromDense(dense);
    for (int cut = 0; cut < 31; ++cut) {  // stay below the symmetrize window
      Vector b = rng.GaussianVector(n);
      double factor = 1.0 + 0.01 * rng.NextDouble();
      double coef = 0.05 * rng.NextDouble();
      dense.FusedScaleRankOne(factor, coef, b);
      packed.FusedScaleRankOne(factor, coef, b);
      for (int r = 0; r < n; ++r) {
        for (int c = r; c < n; ++c) {
          ASSERT_EQ(packed.At(r, c), dense(r, c))
              << "n=" << n << " cut=" << cut << " " << r << "," << c;
        }
      }
    }
  }
}

}  // namespace
}  // namespace pdm
