#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "pricing/ellipsoid_engine.h"
#include "pricing/feature_maps.h"
#include "pricing/generalized_engine.h"
#include "pricing/link_functions.h"
#include "rng/rng.h"

namespace pdm {
namespace {

// ---------------------------------------------------------------- links

TEST(LinkFunctions, IdentityRoundTrip) {
  IdentityLink link;
  EXPECT_DOUBLE_EQ(link.Apply(3.5), 3.5);
  EXPECT_DOUBLE_EQ(link.Inverse(3.5), 3.5);
  EXPECT_TRUE(std::isinf(link.range_sup()));
}

TEST(LinkFunctions, ExpRoundTrip) {
  ExpLink link;
  EXPECT_NEAR(link.Inverse(link.Apply(1.7)), 1.7, 1e-12);
  EXPECT_NEAR(link.Apply(0.0), 1.0, 1e-12);
  // Below the range: −∞ (vacuous reserve).
  EXPECT_TRUE(std::isinf(link.Inverse(0.0)));
  EXPECT_LT(link.Inverse(-1.0), 0.0);
}

TEST(LinkFunctions, LogisticRoundTripAndRange) {
  LogisticLink link;
  EXPECT_NEAR(link.Apply(0.0), 0.5, 1e-12);
  EXPECT_NEAR(link.Inverse(link.Apply(-2.3)), -2.3, 1e-10);
  EXPECT_DOUBLE_EQ(link.range_sup(), 1.0);
  EXPECT_TRUE(std::isinf(link.Inverse(1.0)));
  EXPECT_TRUE(std::isinf(link.Inverse(0.0)));
  EXPECT_GT(link.Inverse(1.0), 0.0);   // +∞
  EXPECT_LT(link.Inverse(0.0), 0.0);   // −∞
}

TEST(LinkFunctions, AllLinksNonDecreasing) {
  IdentityLink identity;
  ExpLink exp_link;
  LogisticLink logistic;
  const LinkFunction* links[] = {&identity, &exp_link, &logistic};
  for (const LinkFunction* link : links) {
    double prev = link->Apply(-5.0);
    for (double z = -4.5; z <= 5.0; z += 0.5) {
      double cur = link->Apply(z);
      EXPECT_GE(cur, prev) << link->name() << " at z=" << z;
      prev = cur;
    }
  }
}

// ---------------------------------------------------------------- maps

TEST(FeatureMaps, IdentityPassesThrough) {
  IdentityFeatureMap map;
  Vector x{1.0, -2.0};
  EXPECT_EQ(map.Map(x), x);
  EXPECT_EQ(map.output_dim(2), 2);
}

TEST(FeatureMaps, ElementwiseLogWithFloor) {
  ElementwiseLogMap map(1e-6);
  Vector x{std::exp(2.0), 0.0};
  Vector mapped = map.Map(x);
  EXPECT_NEAR(mapped[0], 2.0, 1e-12);
  EXPECT_NEAR(mapped[1], std::log(1e-6), 1e-12);
}

TEST(FeatureMaps, KernelMapDelegatesToLandmarks) {
  Matrix landmarks = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  auto inner = std::make_shared<LandmarkKernelMap>(std::make_shared<LinearKernel>(),
                                                   landmarks);
  KernelFeatureMap map(inner);
  Vector phi = map.Map({2.0, 3.0});
  EXPECT_EQ(phi, (Vector{2.0, 3.0}));
  EXPECT_EQ(map.output_dim(2), 2);
}

// ---------------------------------------------------------------- adapter

std::unique_ptr<EllipsoidPricingEngine> MakeBase(int dim, bool use_reserve) {
  EllipsoidEngineConfig config;
  config.dim = dim;
  config.horizon = 1000;
  config.initial_radius = 4.0;
  config.use_reserve = use_reserve;
  return std::make_unique<EllipsoidPricingEngine>(config);
}

TEST(GeneralizedEngine, ExpLinkPricesInValueSpace) {
  GeneralizedPricingEngine engine(MakeBase(3, true), std::make_shared<ExpLink>(),
                                  std::make_shared<IdentityFeatureMap>());
  Rng rng(1);
  Vector x = rng.GaussianVector(3);
  RescaleToNorm(&x, 1.0);
  PostedPrice posted = engine.PostPrice(x, 2.0);
  // z-space midpoint is 0, reserve in z-space is log 2 ≈ 0.69 > 0, so the
  // posted price is exactly the reserve in value space.
  EXPECT_NEAR(posted.price, 2.0, 1e-12);
  engine.Observe(true);
}

TEST(GeneralizedEngine, MirrorsBaseEngineThroughMonotoneLink) {
  // Pricing v = exp(z) through the adapter must equal exp(pricing z) with the
  // same feedback sequence.
  auto adapter_base = MakeBase(3, false);
  EllipsoidPricingEngine* base_view = adapter_base.get();
  GeneralizedPricingEngine adapted(std::move(adapter_base), std::make_shared<ExpLink>(),
                                   std::make_shared<IdentityFeatureMap>());
  auto reference = MakeBase(3, false);

  Rng rng(2);
  Vector theta = rng.GaussianVector(3);
  RescaleToNorm(&theta, 2.0);
  for (int t = 0; t < 100; ++t) {
    Vector x = rng.GaussianVector(3);
    RescaleToNorm(&x, 1.0);
    double z_value = Dot(x, theta);
    double v_value = std::exp(z_value);

    PostedPrice adapted_posted = adapted.PostPrice(x, 0.0);
    PostedPrice reference_posted = reference->PostPrice(x, -1e30);
    EXPECT_NEAR(adapted_posted.price, std::exp(reference_posted.price), 1e-9)
        << "round " << t;

    bool adapted_accept = adapted_posted.price <= v_value;
    bool reference_accept = reference_posted.price <= z_value;
    EXPECT_EQ(adapted_accept, reference_accept);
    adapted.Observe(adapted_accept);
    reference->Observe(reference_accept);
  }
  // Final z-space knowledge sets agree.
  Vector probe = rng.GaussianVector(3);
  RescaleToNorm(&probe, 1.0);
  EXPECT_NEAR(base_view->EstimateValueInterval(probe).lower,
              reference->EstimateValueInterval(probe).lower, 1e-9);
}

TEST(GeneralizedEngine, LogisticReserveAtOrAboveOneSkips) {
  GeneralizedPricingEngine engine(MakeBase(3, true), std::make_shared<LogisticLink>(),
                                  std::make_shared<IdentityFeatureMap>());
  Vector x{1.0, 0.0, 0.0};
  PostedPrice posted = engine.PostPrice(x, 1.0);
  EXPECT_TRUE(posted.certain_no_sale);
  EXPECT_DOUBLE_EQ(posted.price, 1.0);
  engine.Observe(false);
  // The base engine was never consulted for the skipped round.
  EXPECT_EQ(engine.counters().rounds, 0);
}

TEST(GeneralizedEngine, LogisticPricesStayInUnitInterval) {
  GeneralizedPricingEngine engine(MakeBase(4, false), std::make_shared<LogisticLink>(),
                                  std::make_shared<IdentityFeatureMap>());
  Rng rng(3);
  Vector theta = rng.GaussianVector(4);
  RescaleToNorm(&theta, 3.0);
  for (int t = 0; t < 200; ++t) {
    Vector x = rng.GaussianVector(4);
    RescaleToNorm(&x, 1.0);
    double value = 1.0 / (1.0 + std::exp(-Dot(x, theta)));
    PostedPrice posted = engine.PostPrice(x, 0.0);
    EXPECT_GT(posted.price, 0.0);
    EXPECT_LT(posted.price, 1.0);
    engine.Observe(posted.price <= value);
  }
}

TEST(GeneralizedEngine, LogLogModelViaExpLinkAndLogMap) {
  // v = exp(Σ log(x_i)·θ_i): ElementwiseLogMap + ExpLink (Section IV-A).
  GeneralizedPricingEngine engine(MakeBase(2, false), std::make_shared<ExpLink>(),
                                  std::make_shared<ElementwiseLogMap>());
  Rng rng(4);
  Vector theta{0.5, 0.25};
  for (int t = 0; t < 150; ++t) {
    Vector x{rng.NextUniform(0.5, 3.0), rng.NextUniform(0.5, 3.0)};
    double z = std::log(x[0]) * theta[0] + std::log(x[1]) * theta[1];
    double value = std::exp(z);
    PostedPrice posted = engine.PostPrice(x, 0.0);
    engine.Observe(posted.price <= value);
  }
  // After exploration, the engine's estimate brackets the true value.
  Vector probe{2.0, 2.0};
  double true_value = std::exp(std::log(2.0) * 0.75);
  ValueInterval estimate = engine.EstimateValueInterval(probe);
  EXPECT_LE(estimate.lower, true_value + 1e-6);
  EXPECT_GE(estimate.upper, true_value - 1e-6);
}

TEST(GeneralizedEngine, NameComposesBaseAndLink) {
  GeneralizedPricingEngine engine(MakeBase(2, true), std::make_shared<ExpLink>(),
                                  std::make_shared<IdentityFeatureMap>());
  EXPECT_EQ(engine.name(), "reserve/exp");
}

}  // namespace
}  // namespace pdm
