#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "data/avazu_like.h"
#include "market/airbnb_market.h"
#include "market/avazu_market.h"
#include "market/linear_market.h"
#include "rng/rng.h"

namespace pdm {
namespace {

// ---------------------------------------------------------------- app 1

TEST(NoisyLinearStream, FeatureInvariants) {
  NoisyLinearMarketConfig config;
  config.feature_dim = 20;
  config.num_owners = 300;
  Rng rng(1);
  NoisyLinearQueryStream stream(config, &rng);
  for (int t = 0; t < 50; ++t) {
    MarketRound round = stream.Next(&rng);
    ASSERT_EQ(round.features.size(), 20u);
    // ‖x‖ = 1 (S = 1 in the analysis).
    EXPECT_NEAR(Norm2(round.features), 1.0, 1e-9);
    // q = Σ x_i and features non-negative (compensations are non-negative).
    EXPECT_NEAR(round.reserve, Sum(round.features), 1e-9);
    for (double v : round.features) EXPECT_GE(v, 0.0);
  }
}

TEST(NoisyLinearStream, NoiselessValueIsDotProduct) {
  NoisyLinearMarketConfig config;
  config.feature_dim = 10;
  config.num_owners = 100;
  config.value_noise_sigma = 0.0;
  Rng rng(2);
  NoisyLinearQueryStream stream(config, &rng);
  for (int t = 0; t < 20; ++t) {
    MarketRound round = stream.Next(&rng);
    EXPECT_NEAR(round.value, Dot(round.features, stream.theta()), 1e-9);
  }
}

TEST(NoisyLinearStream, ThetaScaledToSqrtTwoN) {
  NoisyLinearMarketConfig config;
  config.feature_dim = 20;
  config.num_owners = 100;
  Rng rng(3);
  NoisyLinearQueryStream stream(config, &rng);
  EXPECT_NEAR(Norm2(stream.theta()), std::sqrt(40.0), 1e-9);
  EXPECT_NEAR(stream.RecommendedRadius(), 2.0 * std::sqrt(20.0), 1e-12);
  // Non-negative θ* (Table I shape; DESIGN.md §5).
  for (double v : stream.theta()) EXPECT_GE(v, 0.0);
}

TEST(NoisyLinearStream, ValueExceedsReserveMostRounds) {
  // "This guarantees that the market value of each query is no less than its
  // reserve price with a high probability."
  NoisyLinearMarketConfig config;
  config.feature_dim = 20;
  config.num_owners = 500;
  Rng rng(4);
  NoisyLinearQueryStream stream(config, &rng);
  int above = 0;
  const int kRounds = 500;
  for (int t = 0; t < kRounds; ++t) {
    MarketRound round = stream.Next(&rng);
    if (round.value >= round.reserve) ++above;
  }
  EXPECT_GT(above, kRounds * 0.75);
}

TEST(NoisyLinearStream, NoiseSigmaControlsSpread) {
  NoisyLinearMarketConfig config;
  config.feature_dim = 5;
  config.num_owners = 50;
  config.value_noise_sigma = 0.5;
  Rng rng(5);
  NoisyLinearQueryStream stream(config, &rng);
  RunningStats residuals;
  for (int t = 0; t < 20000; ++t) {
    MarketRound round = stream.Next(&rng);
    residuals.Add(round.value - Dot(round.features, stream.theta()));
  }
  EXPECT_NEAR(residuals.stddev(), 0.5, 0.02);
  EXPECT_NEAR(residuals.mean(), 0.0, 0.02);
}

TEST(NoisyLinearStream, OneDimensionalDegenerateCase) {
  // n = 1: x = [1], q = 1, v = θ = √2 — the constants of Fig. 4(a).
  NoisyLinearMarketConfig config;
  config.feature_dim = 1;
  config.num_owners = 100;
  Rng rng(6);
  NoisyLinearQueryStream stream(config, &rng);
  MarketRound round = stream.Next(&rng);
  EXPECT_NEAR(round.features[0], 1.0, 1e-12);
  EXPECT_NEAR(round.reserve, 1.0, 1e-12);
  EXPECT_NEAR(round.value, std::sqrt(2.0), 1e-12);
}

// ---------------------------------------------------------------- app 2

TEST(AirbnbMarket, BuildRecoversPlantedModel) {
  AirbnbMarketConfig config;
  config.num_listings = 8000;  // scaled down for test speed
  Rng rng(7);
  AirbnbMarket market = BuildAirbnbMarket(config, &rng);
  EXPECT_EQ(market.theta.size(), 55u);
  // Planted noise σ = 0.47 ⇒ MSE ≈ 0.22, the paper reports 0.226.
  EXPECT_GT(market.test_mse, 0.15);
  EXPECT_LT(market.test_mse, 0.30);
  EXPECT_EQ(market.rounds.size(), 8000u);
  EXPECT_GT(market.recommended_radius, 0.0);
  EXPECT_GT(market.feature_norm_bound, 0.0);
}

TEST(AirbnbMarket, ReserveFollowsLogRatio) {
  AirbnbMarketConfig config;
  config.num_listings = 2000;
  config.log_reserve_ratio = 0.6;
  Rng rng(8);
  AirbnbMarket market = BuildAirbnbMarket(config, &rng);
  int64_t reserve_above_value = 0;
  for (const MarketRound& round : market.rounds) {
    EXPECT_GT(round.value, 0.0);
    EXPECT_NEAR(std::log(round.reserve), 0.6 * std::log(round.value), 1e-9);
    // log q = r·log v with r < 1 puts q below v exactly when v > 1 (i.e.
    // above one hundred dollars); cheaper listings become unsellable rounds
    // (q > v), which Eq. (1) scores as zero regret.
    if (round.value > 1.0) {
      EXPECT_LT(round.reserve, round.value);
    } else {
      EXPECT_GE(round.reserve, round.value);
      ++reserve_above_value;
    }
  }
  // The unsellable fraction is a minority of the stream.
  EXPECT_LT(reserve_above_value, market.rounds.size() / 2);
}

TEST(AirbnbMarket, ZeroRatioDisablesReserve) {
  AirbnbMarketConfig config;
  config.num_listings = 500;
  config.log_reserve_ratio = 0.0;
  Rng rng(9);
  AirbnbMarket market = BuildAirbnbMarket(config, &rng);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(market.rounds[i].reserve, 0.0);
  }
}

TEST(AirbnbMarket, ValuesInPlausibleRange) {
  AirbnbMarketConfig config;
  config.num_listings = 2000;
  Rng rng(10);
  AirbnbMarket market = BuildAirbnbMarket(config, &rng);
  RunningStats values;
  for (const MarketRound& round : market.rounds) values.Add(round.value);
  // Prices are in hundreds of dollars (log-price centered near 0.5):
  // nightly rates roughly $80–$600.
  EXPECT_GT(values.mean(), 0.8);
  EXPECT_LT(values.mean(), 6.0);
}

TEST(ReplayStream, WrapsAround) {
  std::vector<MarketRound> rounds(3);
  for (int i = 0; i < 3; ++i) {
    rounds[static_cast<size_t>(i)].value = i;
    rounds[static_cast<size_t>(i)].features = {1.0};
  }
  ReplayQueryStream stream(&rounds);
  Rng rng(11);
  EXPECT_DOUBLE_EQ(stream.Next(&rng).value, 0.0);
  EXPECT_DOUBLE_EQ(stream.Next(&rng).value, 1.0);
  EXPECT_DOUBLE_EQ(stream.Next(&rng).value, 2.0);
  EXPECT_DOUBLE_EQ(stream.Next(&rng).value, 0.0);
}

// ---------------------------------------------------------------- app 3

TEST(AvazuMarket, LearnsSparseCalibratedModel) {
  AvazuLikeConfig data_config;
  Rng rng(12);
  AvazuLikeClickLog log(data_config, &rng);
  AvazuMarketConfig config;
  config.hashed_dim = 128;
  config.train_samples = 60000;
  config.eval_samples = 10000;
  AvazuMarket market = BuildAvazuMarket(config, log, &rng);
  EXPECT_EQ(market.theta.size(), 128u);
  // Paper shape: a few dozen non-zeros out of the hashed space (21 at n=128).
  EXPECT_GT(market.nonzero_weights, 3);
  EXPECT_LT(market.nonzero_weights, 60);
  EXPECT_EQ(market.support.size(), static_cast<size_t>(market.nonzero_weights));
  // The intercept absorbs the negative base logit.
  EXPECT_LT(market.bias, -0.5);
  // Better than predicting the base rate blindly, worse than perfect.
  EXPECT_GT(market.logloss, 0.05);
  EXPECT_LT(market.logloss, 0.55);
}

TEST(AvazuStream, SparseAndDenseValuesAgree) {
  // The dense encoding drops only zero-weight coordinates, so the market
  // value must be identical for the same impression.
  AvazuLikeConfig data_config;
  Rng rng(13);
  AvazuLikeClickLog log(data_config, &rng);
  AvazuMarketConfig config;
  config.hashed_dim = 128;
  config.train_samples = 40000;
  config.eval_samples = 5000;
  AvazuMarket market = BuildAvazuMarket(config, log, &rng);

  AvazuQueryStream sparse(&log, &market, 128, /*dense=*/false);
  AvazuQueryStream dense(&log, &market, 128, /*dense=*/true);
  EXPECT_EQ(sparse.feature_dim(), 128);
  EXPECT_EQ(dense.feature_dim(), market.nonzero_weights);

  Rng rng_a(99), rng_b(99);  // identical impression sequences
  for (int t = 0; t < 100; ++t) {
    MarketRound a = sparse.Next(&rng_a);
    MarketRound b = dense.Next(&rng_b);
    EXPECT_NEAR(a.value, b.value, 1e-12);
    EXPECT_DOUBLE_EQ(a.reserve, 0.0);
    EXPECT_DOUBLE_EQ(b.reserve, 0.0);
  }
}

// ------------------------------------------- fill-in / by-value equivalence

/// Drives two identically-seeded instances of a stream, one through the
/// by-value convenience wrapper and one through the fill-in hot path (with a
/// deliberately dirty, oversized reused buffer), and requires bit-identical
/// rounds.
template <typename MakeStream>
void ExpectNextOverloadsEquivalent(MakeStream make_stream, uint64_t setup_seed,
                                   uint64_t drive_seed, int rounds) {
  Rng setup_a(setup_seed), setup_b(setup_seed);
  auto by_value = make_stream(&setup_a);
  auto fill_in = make_stream(&setup_b);

  Rng drive_a(drive_seed), drive_b(drive_seed);
  MarketRound reused;
  reused.features.assign(257, -123.456);  // dirty + oversized on purpose
  for (int t = 0; t < rounds; ++t) {
    MarketRound fresh = by_value->Next(&drive_a);
    fill_in->Next(&drive_b, &reused);
    ASSERT_EQ(fresh.features.size(), reused.features.size()) << "round " << t;
    for (size_t i = 0; i < fresh.features.size(); ++i) {
      ASSERT_EQ(fresh.features[i], reused.features[i]) << "round " << t;
    }
    ASSERT_EQ(fresh.reserve, reused.reserve) << "round " << t;
    ASSERT_EQ(fresh.value, reused.value) << "round " << t;
  }
}

TEST(StreamEquivalence, NoisyLinearFillInMatchesByValue) {
  NoisyLinearMarketConfig config;
  config.feature_dim = 12;
  config.num_owners = 150;
  config.value_noise_sigma = 0.01;
  ExpectNextOverloadsEquivalent(
      [&config](Rng* rng) { return std::make_unique<NoisyLinearQueryStream>(config, rng); },
      /*setup_seed=*/5, /*drive_seed=*/15, /*rounds=*/200);
}

TEST(StreamEquivalence, ReplayFillInMatchesByValue) {
  std::vector<MarketRound> rounds;
  Rng rng(7);
  for (int i = 0; i < 9; ++i) {
    MarketRound round;
    round.features = rng.GaussianVector(4);
    round.reserve = rng.NextDouble();
    round.value = rng.NextDouble() * 2.0;
    rounds.push_back(round);
  }
  ExpectNextOverloadsEquivalent(
      [&rounds](Rng*) { return std::make_unique<ReplayQueryStream>(&rounds); },
      /*setup_seed=*/5, /*drive_seed=*/15, /*rounds=*/40);
}

TEST(StreamEquivalence, AvazuFillInMatchesByValue) {
  AvazuLikeConfig data_config;
  Rng rng(17);
  AvazuLikeClickLog log(data_config, &rng);
  AvazuMarketConfig config;
  config.hashed_dim = 64;
  config.train_samples = 20000;
  config.eval_samples = 2000;
  AvazuMarket market = BuildAvazuMarket(config, log, &rng);
  ExpectNextOverloadsEquivalent(
      [&log, &market](Rng*) {
        return std::make_unique<AvazuQueryStream>(&log, &market, 64, /*dense=*/false);
      },
      /*setup_seed=*/5, /*drive_seed=*/15, /*rounds=*/100);
}

TEST(AvazuStream, ValuesAreCtrs) {
  AvazuLikeConfig data_config;
  Rng rng(14);
  AvazuLikeClickLog log(data_config, &rng);
  AvazuMarketConfig config;
  config.hashed_dim = 128;
  config.train_samples = 20000;
  config.eval_samples = 2000;
  AvazuMarket market = BuildAvazuMarket(config, log, &rng);
  AvazuQueryStream stream(&log, &market, 128, false);
  for (int t = 0; t < 100; ++t) {
    MarketRound round = stream.Next(&rng);
    EXPECT_GT(round.value, 0.0);
    EXPECT_LT(round.value, 1.0);
  }
}

}  // namespace
}  // namespace pdm
