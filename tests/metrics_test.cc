// Tests for the metrics subsystem (DESIGN.md §13): handle semantics and
// idempotent registration, the no-op gateway, Prometheus text exposition
// goldens (escaping, sparse histogram buckets, non-finite gauges), the
// pdm.metrics.v1 dump codec, and a registry hammered by concurrent writers
// while a reader renders — the latter is the TSan target: every cell access
// must be an atomic op, never a plain read racing a fetch_add.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "metrics/metrics.h"

namespace pdm::metrics {
namespace {

// ------------------------------------------------------------ handles/cells

TEST(MetricHandles, CounterIncrementAndAdd) {
  MetricRegistry registry;
  Counter c = registry.GetCounter("t_total", "help");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricHandles, GaugeSetAddSub) {
  MetricRegistry registry;
  Gauge g = registry.GetGauge("t", "help");
  g.Set(10.0);
  g.Add(5.0);
  g.Sub(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 12.5);
}

TEST(MetricHandles, HistogramCountSumQuantile) {
  MetricRegistry registry;
  Histogram h = registry.GetHistogram("t_ns", "help");
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  for (uint64_t v : {100u, 200u, 300u, 400u}) h.Record(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 1000u);
  // Conservative quantiles land on bucket floors at or below the sample.
  EXPECT_LE(h.Quantile(0.5), 200u);
  EXPECT_GT(h.Quantile(0.5), 100u);
  EXPECT_LE(h.Quantile(1.0), 400u);
}

TEST(MetricRegistryTest, LookupsAreIdempotentSameCell) {
  // The reader contract: a second lookup of the same (name, labels) observes
  // what the first handle wrote. This is how shutdown stats and CI scrapes
  // read the hot path's cells without side plumbing.
  MetricRegistry registry;
  Counter a = registry.GetCounter("dup_total", "help");
  a.Add(7);
  Counter b = registry.GetCounter("dup_total", "help");
  EXPECT_EQ(b.value(), 7u);
  b.Increment();
  EXPECT_EQ(a.value(), 8u);

  Counter labeled = registry.GetCounter("dup_total", "help", {{"k", "v"}});
  EXPECT_EQ(labeled.value(), 0u);  // distinct label set → distinct cell
  labeled.Add(3);
  EXPECT_EQ(a.value(), 8u);
  EXPECT_EQ(registry.GetCounter("dup_total", "help", {{"k", "v"}}).value(), 3u);

  Gauge g1 = registry.GetGauge("dup_gauge", "help");
  g1.Set(1.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("dup_gauge", "help").value(), 1.5);

  Histogram h1 = registry.GetHistogram("dup_ns", "help");
  h1.Record(64);
  EXPECT_EQ(registry.GetHistogram("dup_ns", "help").count(), 1);
}

TEST(NoopGateway, SinkHandlesAcceptWritesAndRenderNothing) {
  MetricGateway* noop = MetricGateway::Noop();
  ASSERT_NE(noop, nullptr);
  EXPECT_EQ(noop, MetricGateway::Noop());  // process-wide singleton

  Counter c = noop->GetCounter("ignored_total", "ignored");
  Gauge g = noop->GetGauge("ignored", "ignored");
  Histogram h = noop->GetHistogram("ignored_ns", "ignored");
  c.Increment();
  g.Set(3.0);
  h.Record(1234);

  // Default-constructed handles alias the same sink cells.
  Counter default_counter;
  default_counter.Add(5);
  EXPECT_GE(c.value(), 6u);  // both writes landed in the shared sink
}

// --------------------------------------------------------------- exposition

TEST(Exposition, CounterGolden) {
  MetricRegistry registry;
  Counter c = registry.GetCounter("pdm_quotes_total", "Quotes issued.");
  c.Add(3);
  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP pdm_quotes_total Quotes issued.\n"
            "# TYPE pdm_quotes_total counter\n"
            "pdm_quotes_total 3\n");
}

TEST(Exposition, HelpAndLabelEscaping) {
  MetricRegistry registry;
  Counter c = registry.GetCounter("esc_total", "line1\nback\\slash",
                                  {{"op", "a\"b\\c\nd"}});
  c.Increment();
  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP esc_total line1\\nback\\\\slash\n"
            "# TYPE esc_total counter\n"
            "esc_total{op=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(Exposition, LabeledInstrumentsRenderInRegistrationOrder) {
  MetricRegistry registry;
  registry.GetCounter("frames_total", "Frames.", {{"opcode", "ping"}}).Add(2);
  registry.GetCounter("frames_total", "Frames.", {{"opcode", "observe"}})
      .Add(5);
  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP frames_total Frames.\n"
            "# TYPE frames_total counter\n"
            "frames_total{opcode=\"ping\"} 2\n"
            "frames_total{opcode=\"observe\"} 5\n");
}

TEST(Exposition, NonFiniteGaugesAreNaNSafe) {
  MetricRegistry registry;
  registry.GetGauge("g_nan", "h").Set(std::numeric_limits<double>::quiet_NaN());
  registry.GetGauge("g_pinf", "h").Set(std::numeric_limits<double>::infinity());
  registry.GetGauge("g_ninf", "h").Set(-std::numeric_limits<double>::infinity());
  registry.GetGauge("g_half", "h").Set(2.5);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("g_nan NaN\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g_pinf +Inf\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g_ninf -Inf\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g_half 2.5\n"), std::string::npos) << text;
}

TEST(Exposition, HistogramSparseOctaveBucketsGolden) {
  // Samples land in octaves 0 (value 5), 1 (value 100), and 14 (1 ms); the
  // twelve empty octaves between are elided, and the cumulative series stays
  // monotone through the gaps. Edges come from the shared log-linear grid:
  // BucketFloor(group_end) - 1.
  MetricRegistry registry;
  Histogram h = registry.GetHistogram("lat_ns", "Latency.");
  h.Record(5);
  h.Record(5);
  h.Record(100);
  h.Record(1000000);
  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP lat_ns Latency.\n"
            "# TYPE lat_ns histogram\n"
            "lat_ns_bucket{le=\"63\"} 2\n"
            "lat_ns_bucket{le=\"127\"} 3\n"
            "lat_ns_bucket{le=\"1048575\"} 4\n"
            "lat_ns_bucket{le=\"+Inf\"} 4\n"
            "lat_ns_sum 1000110\n"
            "lat_ns_count 4\n");
}

TEST(Exposition, HistogramWithLabelsKeepsLeLast) {
  MetricRegistry registry;
  Histogram h = registry.GetHistogram("req_ns", "h", {{"op", "ping"}});
  h.Record(10);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("req_ns_bucket{op=\"ping\",le=\"63\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("req_ns_bucket{op=\"ping\",le=\"+Inf\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("req_ns_sum{op=\"ping\"} 10\n"), std::string::npos);
  EXPECT_NE(text.find("req_ns_count{op=\"ping\"} 1\n"), std::string::npos);
}

// --------------------------------------------------------------- dump codec

TEST(DumpCodec, RoundTripAllInstrumentTypes) {
  MetricRegistry registry;
  registry.GetCounter("c_total", "counter help").Add(42);
  registry.GetCounter("c_total", "counter help", {{"opcode", "ping"}}).Add(7);
  registry.GetGauge("g", "gauge help").Set(-2.25);
  registry.GetGauge("g_nan", "h").Set(std::numeric_limits<double>::quiet_NaN());
  Histogram h = registry.GetHistogram("h_ns", "hist help");
  h.Record(100);
  h.Record(100);
  h.Record(1000000);

  MetricsDump dump;
  ASSERT_TRUE(DecodeMetricsDump(registry.EncodeDump(), &dump).ok());
  ASSERT_EQ(dump.instruments.size(), 5u);

  EXPECT_EQ(dump.CounterValue("c_total"), 42u);
  const DumpInstrument* labeled = dump.Find("c_total", "opcode", "ping");
  ASSERT_NE(labeled, nullptr);
  EXPECT_EQ(labeled->counter, 7u);
  EXPECT_EQ(dump.Find("c_total", "opcode", "pong"), nullptr);

  const DumpInstrument* gauge = dump.Find("g");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->type, InstrumentType::kGauge);
  EXPECT_DOUBLE_EQ(gauge->gauge, -2.25);
  const DumpInstrument* nan_gauge = dump.Find("g_nan");
  ASSERT_NE(nan_gauge, nullptr);
  EXPECT_TRUE(std::isnan(nan_gauge->gauge));  // bit-exact through the codec

  const DumpInstrument* hist = dump.Find("h_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->type, InstrumentType::kHistogram);
  EXPECT_EQ(hist->hist_count, 3);
  EXPECT_EQ(hist->hist_sum, 1000200u);
  ASSERT_EQ(hist->hist_buckets.size(), 2u);  // two occupied buckets, sparse
  uint64_t total = 0;
  for (const auto& [index, bucket_count] : hist->hist_buckets) {
    total += bucket_count;
  }
  EXPECT_EQ(total, 3u);
  // The dump-side quantile matches the live handle's (same grid, same data).
  EXPECT_EQ(hist->HistogramQuantile(0.5), h.Quantile(0.5));
  EXPECT_EQ(hist->HistogramQuantile(0.99), h.Quantile(0.99));
}

TEST(DumpCodec, EmptyRegistryRoundTrips) {
  MetricRegistry registry;
  MetricsDump dump;
  ASSERT_TRUE(DecodeMetricsDump(registry.EncodeDump(), &dump).ok());
  EXPECT_TRUE(dump.instruments.empty());
  EXPECT_EQ(dump.CounterValue("absent_total"), 0u);
  EXPECT_EQ(dump.Find("absent"), nullptr);
}

TEST(DumpCodec, RejectsMalformedInput) {
  MetricsDump dump;
  EXPECT_FALSE(DecodeMetricsDump("", &dump).ok());
  EXPECT_FALSE(DecodeMetricsDump("NOTMAGIC", &dump).ok());

  MetricRegistry registry;
  registry.GetCounter("c_total", "h").Increment();
  std::string bytes = registry.EncodeDump();
  // Truncation at every prefix length must fail cleanly, never crash.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeMetricsDump(std::string_view(bytes).substr(0, cut), &dump)
                     .ok())
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_FALSE(DecodeMetricsDump(bytes + "x", &dump).ok());  // trailing bytes
  EXPECT_TRUE(DecodeMetricsDump(bytes, &dump).ok());
}

// -------------------------------------------------------------- concurrency

TEST(MetricRegistryConcurrency, WritersRaceRenderAndDump) {
  // TSan target: 4 writer threads hammer one counter, one gauge, and one
  // histogram while the main thread renders + encodes in a loop. All cell
  // traffic is atomic; the registry mutex only guards structure. Final
  // values must be exact — relaxed ordering loses no increments.
  MetricRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  Counter counter = registry.GetCounter("race_total", "h");
  Gauge gauge = registry.GetGauge("race_gauge", "h");
  Histogram hist = registry.GetHistogram("race_ns", "h");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // Each thread resolves its own handles: registration races
      // registration and rendering, exactly the wiring-time contract.
      Counter c = registry.GetCounter("race_total", "h");
      Gauge g = registry.GetGauge("race_gauge", "h");
      Histogram h = registry.GetHistogram("race_ns", "h");
      for (int i = 0; i < kOpsPerThread; ++i) {
        c.Increment();
        g.Add(1.0);
        h.Record(static_cast<uint64_t>((t + 1) * 100 + i % 50));
      }
    });
  }
  std::thread reader([&registry, &stop] {
    std::string text;
    MetricsDump dump;
    while (!stop.load(std::memory_order_acquire)) {
      text.clear();
      registry.RenderPrometheus(&text);
      ASSERT_TRUE(DecodeMetricsDump(registry.EncodeDump(), &dump).ok());
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter.value(), uint64_t{kThreads} * kOpsPerThread);
  EXPECT_DOUBLE_EQ(gauge.value(), double(kThreads) * kOpsPerThread);
  EXPECT_EQ(hist.count(), int64_t{kThreads} * kOpsPerThread);

  MetricsDump dump;
  ASSERT_TRUE(DecodeMetricsDump(registry.EncodeDump(), &dump).ok());
  EXPECT_EQ(dump.CounterValue("race_total"),
            uint64_t{kThreads} * kOpsPerThread);
  const DumpInstrument* h = dump.Find("race_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hist_count, int64_t{kThreads} * kOpsPerThread);
}

}  // namespace
}  // namespace pdm::metrics
