#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "market/linear_market.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "rng/subgaussian.h"

namespace pdm {
namespace {

/// Parameterized sweep over (dimension, use_reserve, delta): the pricing
/// invariants of Section III hold across the whole variant grid.
using PricingParams = std::tuple<int, bool, double>;

class PricingPropertyTest : public testing::TestWithParam<PricingParams> {
 protected:
  int dim() const { return std::get<0>(GetParam()); }
  bool use_reserve() const { return std::get<1>(GetParam()); }
  double delta() const { return std::get<2>(GetParam()); }

  EllipsoidEngineConfig EngineConfig(int64_t horizon) const {
    EllipsoidEngineConfig config;
    config.dim = dim();
    config.horizon = horizon;
    config.initial_radius = 2.0 * std::sqrt(static_cast<double>(dim()));
    config.use_reserve = use_reserve();
    config.delta = delta();
    return config;
  }

  NoisyLinearMarketConfig MarketConfig(int64_t horizon) const {
    NoisyLinearMarketConfig config;
    config.feature_dim = dim();
    config.num_owners = std::max(100, 4 * dim());
    config.value_noise_sigma =
        delta() > 0.0 ? SigmaForBuffer(delta(), 2.0, horizon) : 0.0;
    return config;
  }
};

TEST_P(PricingPropertyTest, PricesRespectReserveConstraint) {
  int64_t rounds = 800;
  Rng rng(100 + static_cast<uint64_t>(dim()));
  NoisyLinearQueryStream stream(MarketConfig(rounds), &rng);
  EllipsoidPricingEngine engine(EngineConfig(rounds));
  for (int64_t t = 0; t < rounds; ++t) {
    MarketRound round = stream.Next(&rng);
    PostedPrice posted = engine.PostPrice(round.features, round.reserve);
    if (use_reserve()) {
      EXPECT_GE(posted.price, round.reserve - 1e-12);
    }
    engine.Observe(!posted.certain_no_sale && posted.price <= round.value);
  }
}

TEST_P(PricingPropertyTest, ThetaRetainedWhenNoiseWithinBuffer) {
  // With |δ_t| ≤ δ (here: noiseless vs. the configured buffer), the
  // knowledge set must always contain θ*.
  int64_t rounds = 600;
  Rng rng(200 + static_cast<uint64_t>(dim()));
  NoisyLinearMarketConfig market_config = MarketConfig(rounds);
  market_config.value_noise_sigma = 0.0;  // noiseless is within any buffer
  NoisyLinearQueryStream stream(market_config, &rng);
  EllipsoidPricingEngine engine(EngineConfig(rounds));
  for (int64_t t = 0; t < rounds; ++t) {
    MarketRound round = stream.Next(&rng);
    PostedPrice posted = engine.PostPrice(round.features, round.reserve);
    engine.Observe(!posted.certain_no_sale && posted.price <= round.value);
    ASSERT_TRUE(engine.knowledge_set().Contains(stream.theta(), 1e-6))
        << "round " << t << " dim " << dim();
  }
}

TEST_P(PricingPropertyTest, ExploratoryRoundsWithinLemma6Bound) {
  int64_t rounds = 3000;
  Rng rng(300 + static_cast<uint64_t>(dim()));
  NoisyLinearQueryStream stream(MarketConfig(rounds), &rng);
  EllipsoidPricingEngine engine(EngineConfig(rounds));
  SimulationOptions options;
  options.rounds = rounds;
  SimulationResult result = RunMarket(&stream, &engine, options, &rng);
  double n = static_cast<double>(dim());
  double bound = 20.0 * n * n *
                 std::log(20.0 * (2.0 * std::sqrt(n)) * (n + 1.0) / engine.epsilon());
  EXPECT_LE(static_cast<double>(result.engine_counters.exploratory_rounds), bound);
}

TEST_P(PricingPropertyTest, RegretRatioIsSubUnitAndImproving) {
  int64_t rounds = 3000;
  Rng rng(400 + static_cast<uint64_t>(dim()));
  NoisyLinearQueryStream stream(MarketConfig(rounds), &rng);
  EllipsoidPricingEngine engine(EngineConfig(rounds));
  SimulationOptions options;
  options.rounds = rounds;
  options.series_stride = rounds / 4;
  SimulationResult result = RunMarket(&stream, &engine, options, &rng);
  EXPECT_LT(result.tracker.regret_ratio(), 1.0);
  const auto& series = result.tracker.series();
  ASSERT_GE(series.size(), 2u);
  EXPECT_LE(series.back().regret_ratio, series.front().regret_ratio + 1e-9);
}

TEST_P(PricingPropertyTest, CumulativeRegretGrowsSublinearly) {
  // Doubling the horizon should far less than double the tail regret per
  // round (Theorem 1's log T growth); we check the weaker, robust property
  // that the mean per-round regret over the second half is below the first.
  int64_t rounds = 4000;
  Rng rng(500 + static_cast<uint64_t>(dim()));
  NoisyLinearQueryStream stream(MarketConfig(rounds), &rng);
  EllipsoidPricingEngine engine(EngineConfig(rounds));
  SimulationOptions options;
  options.rounds = rounds;
  options.series_stride = rounds / 2;
  SimulationResult result = RunMarket(&stream, &engine, options, &rng);
  const auto& series = result.tracker.series();
  ASSERT_EQ(series.size(), 2u);
  double first_half = series[0].cumulative_regret;
  double second_half = series[1].cumulative_regret - first_half;
  EXPECT_LT(second_half, first_half + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    VariantGrid, PricingPropertyTest,
    testing::Combine(testing::Values(2, 5, 10, 20),           // dimension
                     testing::Values(false, true),            // use_reserve
                     testing::Values(0.0, 0.01)),             // delta
    [](const testing::TestParamInfo<PricingParams>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_reserve" : "_pure") +
             (std::get<2>(info.param) > 0.0 ? "_uncertain" : "_exact");
    });

}  // namespace
}  // namespace pdm
