#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "privacy/compensation.h"
#include "privacy/laplace_mechanism.h"
#include "privacy/linear_query.h"
#include "rng/rng.h"

namespace pdm {
namespace {

// ---------------------------------------------------------------- queries

TEST(NoisyLinearQuery, LaplaceScaleFromVariance) {
  NoisyLinearQuery q;
  q.owner_weights = {1.0};
  q.noise_variance = 8.0;  // Laplace variance 2b² = 8 ⇒ b = 2
  EXPECT_DOUBLE_EQ(q.laplace_scale(), 2.0);
}

TEST(QueryGenerator, GaussianFamilyProducesStandardMoments) {
  QueryGeneratorConfig config;
  config.num_owners = 2000;
  config.family = QueryWeightFamily::kGaussian;
  NoisyLinearQueryGenerator gen(config);
  Rng rng(1);
  NoisyLinearQuery q = gen.Next(&rng);
  ASSERT_EQ(q.num_owners(), 2000);
  RunningStats stats;
  for (double w : q.owner_weights) stats.Add(w);
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
  EXPECT_NEAR(stats.variance(), 1.0, 0.15);
}

TEST(QueryGenerator, UniformFamilyStaysInRange) {
  QueryGeneratorConfig config;
  config.num_owners = 500;
  config.family = QueryWeightFamily::kUniform;
  NoisyLinearQueryGenerator gen(config);
  Rng rng(2);
  NoisyLinearQuery q = gen.Next(&rng);
  for (double w : q.owner_weights) {
    EXPECT_GE(w, -1.0);
    EXPECT_LT(w, 1.0);
  }
}

TEST(QueryGenerator, NoiseVarianceOnDecadeGrid) {
  QueryGeneratorConfig config;
  config.num_owners = 10;
  config.noise_exponent_range = 4;
  NoisyLinearQueryGenerator gen(config);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    NoisyLinearQuery q = gen.Next(&rng);
    double log10v = std::log10(q.noise_variance);
    double rounded = std::round(log10v);
    EXPECT_NEAR(log10v, rounded, 1e-9);
    EXPECT_LE(std::fabs(rounded), 4.0);
  }
}

TEST(AnswerQuery, NoiselessLimitMatchesDot) {
  NoisyLinearQuery q;
  q.owner_weights = {0.5, -0.25, 1.0};
  q.noise_variance = 1e-18;  // effectively zero noise
  Vector data{1.0, 2.0, 3.0};
  Rng rng(4);
  EXPECT_NEAR(AnswerNoisyLinearQuery(q, data, &rng), 0.5 - 0.5 + 3.0, 1e-6);
}

TEST(AnswerQuery, NoiseVarianceMatchesRequest) {
  NoisyLinearQuery q;
  q.owner_weights = {1.0};
  q.noise_variance = 4.0;
  Vector data{0.0};
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(AnswerNoisyLinearQuery(q, data, &rng));
  EXPECT_NEAR(stats.variance(), 4.0, 0.2);
}

// ---------------------------------------------------------------- leakage

TEST(LaplaceMechanism, EpsilonLinearInWeight) {
  LaplaceMechanism mech{/*data_range=*/1.0};
  EXPECT_DOUBLE_EQ(mech.EpsilonForOwner(0.5, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(mech.EpsilonForOwner(-0.5, 2.0), 0.25);  // |w|
  EXPECT_DOUBLE_EQ(mech.EpsilonForOwner(0.0, 2.0), 0.0);
}

TEST(LaplaceMechanism, LeakageProfileShape) {
  LaplaceMechanism mech{1.0};
  NoisyLinearQuery q;
  q.owner_weights = {1.0, -2.0, 0.0};
  q.noise_variance = 2.0;  // b = 1
  Vector eps = mech.LeakageProfile(q);
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_DOUBLE_EQ(eps[0], 1.0);
  EXPECT_DOUBLE_EQ(eps[1], 2.0);
  EXPECT_DOUBLE_EQ(eps[2], 0.0);
}

TEST(LaplaceMechanism, MoreNoiseLessLeakage) {
  LaplaceMechanism mech{1.0};
  NoisyLinearQuery low_noise, high_noise;
  low_noise.owner_weights = high_noise.owner_weights = {1.0};
  low_noise.noise_variance = 0.5;
  high_noise.noise_variance = 50.0;
  EXPECT_GT(mech.LeakageProfile(low_noise)[0], mech.LeakageProfile(high_noise)[0]);
}

TEST(LaplaceMechanism, WorstCaseEpsilon) {
  LaplaceMechanism mech{2.0};
  NoisyLinearQuery q;
  q.owner_weights = {0.5, -3.0, 1.0};
  q.noise_variance = 2.0;  // b = 1
  EXPECT_DOUBLE_EQ(mech.GlobalSensitivity(q), 6.0);
  EXPECT_DOUBLE_EQ(mech.WorstCaseEpsilon(q), 6.0);
}

// ---------------------------------------------------------------- contracts

TEST(CompensationContract, TanhShape) {
  CompensationContract c{/*scale=*/2.0, /*rate=*/1.0};
  EXPECT_DOUBLE_EQ(c.Payment(0.0), 0.0);
  EXPECT_NEAR(c.Payment(1.0), 2.0 * std::tanh(1.0), 1e-12);
  // Saturates at `scale`.
  EXPECT_NEAR(c.Payment(100.0), 2.0, 1e-9);
}

TEST(CompensationContract, MonotoneInEpsilon) {
  CompensationContract c{1.5, 0.7};
  double prev = -1.0;
  for (double eps = 0.0; eps <= 5.0; eps += 0.25) {
    double p = c.Payment(eps);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(CompensationLedger, TotalIsSumOfParts) {
  Rng rng(6);
  CompensationLedger ledger = CompensationLedger::Random(50, 1.0, 1.0, &rng);
  NoisyLinearQuery q;
  q.owner_weights = rng.GaussianVector(50);
  q.noise_variance = 1.0;
  Vector parts = ledger.Compensations(q);
  EXPECT_EQ(parts.size(), 50u);
  EXPECT_NEAR(ledger.TotalCompensation(q), Sum(parts), 1e-9);
  for (double p : parts) EXPECT_GE(p, 0.0);
}

TEST(CompensationLedger, ZeroWeightsZeroCompensation) {
  Rng rng(7);
  CompensationLedger ledger = CompensationLedger::Random(10, 1.0, 1.0, &rng);
  NoisyLinearQuery q;
  q.owner_weights = Zeros(10);
  q.noise_variance = 1.0;
  EXPECT_DOUBLE_EQ(ledger.TotalCompensation(q), 0.0);
}

TEST(CompensationLedger, HigherNoiseLowersReserve) {
  Rng rng(8);
  CompensationLedger ledger = CompensationLedger::Random(100, 1.0, 1.0, &rng);
  NoisyLinearQuery precise, noisy;
  precise.owner_weights = noisy.owner_weights = rng.UniformVector(100, -1.0, 1.0);
  precise.noise_variance = 0.01;
  noisy.noise_variance = 100.0;
  EXPECT_GT(ledger.TotalCompensation(precise), ledger.TotalCompensation(noisy));
}

}  // namespace
}  // namespace pdm
