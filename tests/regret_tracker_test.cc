#include <gtest/gtest.h>

#include <algorithm>

#include "market/regret_tracker.h"
#include "rng/rng.h"

namespace pdm {
namespace {

MarketRound MakeRound(double value, double reserve) {
  MarketRound round;
  round.features = {1.0};
  round.value = value;
  round.reserve = reserve;
  return round;
}

PostedPrice MakePosted(double price) {
  PostedPrice posted;
  posted.price = price;
  return posted;
}

// ------------------------------------------------- Eq. (1) branch coverage

TEST(SingleRoundRegret, ReserveAboveValueIsZero) {
  // q > v ⇒ no regret regardless of the price.
  EXPECT_DOUBLE_EQ(RegretTracker::SingleRoundRegret(1.0, 2.0, 5.0, false), 0.0);
  EXPECT_DOUBLE_EQ(RegretTracker::SingleRoundRegret(1.0, 1.00001, 0.5, true), 0.0);
}

TEST(SingleRoundRegret, AcceptedSaleLeavesMarkupOnTable) {
  // q ≤ v, p ≤ v sold at p: regret v − p.
  EXPECT_DOUBLE_EQ(RegretTracker::SingleRoundRegret(10.0, 2.0, 7.0, true), 3.0);
}

TEST(SingleRoundRegret, RejectedSaleLosesWholeValue) {
  // q ≤ v, p > v: no sale, regret v.
  EXPECT_DOUBLE_EQ(RegretTracker::SingleRoundRegret(10.0, 2.0, 12.0, false), 10.0);
}

TEST(SingleRoundRegret, PostingExactlyValueIsZeroRegret) {
  EXPECT_DOUBLE_EQ(RegretTracker::SingleRoundRegret(10.0, 2.0, 10.0, true), 0.0);
}

TEST(SingleRoundRegret, Lemma1ReserveNeverIncreasesRegret) {
  // Lemma 1: R(max(q, p')) ≤ R(p') for every (v, q, p') combination, where
  // both policies face the same market value.
  Rng rng(1);
  for (int trial = 0; trial < 5000; ++trial) {
    double v = rng.NextUniform(0.0, 10.0);
    double q = rng.NextUniform(0.0, 10.0);
    double p_pure = rng.NextUniform(0.0, 10.0);
    double p_reserve = std::max(q, p_pure);
    double regret_pure = RegretTracker::SingleRoundRegret(v, 0.0, p_pure, p_pure <= v);
    double regret_reserve =
        RegretTracker::SingleRoundRegret(v, q, p_reserve, p_reserve <= v);
    EXPECT_LE(regret_reserve, regret_pure + 1e-12)
        << "v=" << v << " q=" << q << " p'=" << p_pure;
  }
}

// ------------------------------------------------- tracker accumulation

TEST(RegretTracker, AccumulatesRevenueAndRegret) {
  RegretTracker tracker;
  // Sale at 7 against value 10 (reserve 2): regret 3, revenue 7.
  tracker.Observe(MakeRound(10.0, 2.0), MakePosted(7.0), true);
  // Overpriced at 12: regret 10, no revenue.
  tracker.Observe(MakeRound(10.0, 2.0), MakePosted(12.0), false);
  EXPECT_EQ(tracker.rounds(), 2);
  EXPECT_EQ(tracker.sales(), 1);
  EXPECT_DOUBLE_EQ(tracker.cumulative_regret(), 13.0);
  EXPECT_DOUBLE_EQ(tracker.cumulative_revenue(), 7.0);
  EXPECT_DOUBLE_EQ(tracker.cumulative_value(), 20.0);
  EXPECT_DOUBLE_EQ(tracker.regret_ratio(), 13.0 / 20.0);
}

TEST(RegretTracker, BaselineCompanionMatchesRiskAverseDefinition) {
  RegretTracker tracker;
  tracker.Observe(MakeRound(10.0, 4.0), MakePosted(9.0), true);   // baseline: 10−4
  tracker.Observe(MakeRound(3.0, 4.0), MakePosted(4.0), false);   // q>v: baseline 0
  EXPECT_DOUBLE_EQ(tracker.baseline_cumulative_regret(), 6.0);
  EXPECT_DOUBLE_EQ(tracker.baseline_regret_ratio(), 6.0 / 13.0);
  EXPECT_DOUBLE_EQ(tracker.oracle_revenue(), 10.0);
}

TEST(RegretTracker, PerRoundStatsFeedTableOne) {
  RegretTracker tracker;
  tracker.Observe(MakeRound(10.0, 2.0), MakePosted(8.0), true);
  tracker.Observe(MakeRound(20.0, 4.0), MakePosted(22.0), false);
  EXPECT_DOUBLE_EQ(tracker.value_stats().mean(), 15.0);
  EXPECT_DOUBLE_EQ(tracker.reserve_stats().mean(), 3.0);
  EXPECT_DOUBLE_EQ(tracker.price_stats().mean(), 15.0);
  EXPECT_DOUBLE_EQ(tracker.regret_stats().mean(), 11.0);  // (2 + 20)/2
}

TEST(RegretTracker, SeriesRecordingAtStride) {
  RegretTracker tracker(/*series_stride=*/2);
  for (int i = 0; i < 6; ++i) {
    tracker.Observe(MakeRound(1.0, 0.1), MakePosted(2.0), false);
  }
  ASSERT_EQ(tracker.series().size(), 3u);
  EXPECT_EQ(tracker.series()[0].round, 2);
  EXPECT_EQ(tracker.series()[2].round, 6);
  EXPECT_DOUBLE_EQ(tracker.series()[2].cumulative_regret, 6.0);
  EXPECT_DOUBLE_EQ(tracker.series()[2].regret_ratio, 1.0);
}

TEST(RegretTracker, NoSeriesWhenStrideZero) {
  RegretTracker tracker(0);
  tracker.Observe(MakeRound(1.0, 0.1), MakePosted(0.5), true);
  EXPECT_TRUE(tracker.series().empty());
}

TEST(RegretTracker, RegretRatioZeroWithoutValue) {
  RegretTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.regret_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.baseline_regret_ratio(), 0.0);
}

}  // namespace
}  // namespace pdm
