#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "rng/rng.h"
#include "rng/subgaussian.h"

namespace pdm {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedUint64RespectsBound) {
  Rng rng(11);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(Rng, BoundedUint64CoversAllResidues) {
  Rng rng(13);
  bool seen[5] = {false, false, false, false, false};
  for (int i = 0; i < 500; ++i) seen[rng.NextUint64(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformMoments) {
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextUniform(-1.0, 1.0));
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0 / 3.0, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0, 0.03);
}

TEST(Rng, GaussianWithParams) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LaplaceMomentsMatchScale) {
  Rng rng(9);
  double scale = 1.5;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextLaplace(scale));
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  // Laplace(b) variance is 2b².
  EXPECT_NEAR(stats.variance(), 2.0 * scale * scale, 0.1);
}

TEST(Rng, RademacherIsBalanced) {
  Rng rng(17);
  int plus = 0;
  for (int i = 0; i < 10000; ++i) {
    int r = rng.NextRademacher();
    EXPECT_TRUE(r == 1 || r == -1);
    if (r == 1) ++plus;
  }
  EXPECT_NEAR(plus / 10000.0, 0.5, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_FALSE(rng.NextBernoulli(-1.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_TRUE(rng.NextBernoulli(2.0));
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.Split();
  Rng child2 = parent2.Split();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child1.NextUint64(), child2.NextUint64());
  }
  // Parent and child streams should not be identical.
  Rng parent(99);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, VectorHelpersHaveRightSizeAndRange) {
  Rng rng(31);
  auto g = rng.GaussianVector(10);
  auto u = rng.UniformVector(10, 2.0, 3.0);
  EXPECT_EQ(g.size(), 10u);
  EXPECT_EQ(u.size(), 10u);
  for (double x : u) {
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

// ---------------------------------------------------------------- subgaussian

TEST(SubGaussian, BufferDeltaFormula) {
  SubGaussianSpec spec{/*sigma=*/0.5, /*tail_constant=*/2.0};
  int64_t rounds = 1000;
  double expected = std::sqrt(2.0 * std::log(2.0)) * 0.5 * std::log(1000.0);
  EXPECT_NEAR(BufferDelta(spec, rounds), expected, 1e-12);
}

TEST(SubGaussian, ZeroSigmaGivesZeroBuffer) {
  SubGaussianSpec spec{0.0, 2.0};
  EXPECT_DOUBLE_EQ(BufferDelta(spec, 100), 0.0);
}

TEST(SubGaussian, SigmaForBufferInvertsBufferDelta) {
  int64_t rounds = 100000;
  double delta = 0.01;
  double sigma = SigmaForBuffer(delta, 2.0, rounds);
  SubGaussianSpec spec{sigma, 2.0};
  EXPECT_NEAR(BufferDelta(spec, rounds), delta, 1e-12);
}

TEST(SubGaussian, EmpiricalTailBoundHolds) {
  // With the Eq. (5) buffer, essentially no draws should exceed ±δ.
  int64_t rounds = 10000;
  double delta = 0.05;
  double sigma = SigmaForBuffer(delta, 2.0, rounds);
  GaussianMarketNoise noise(SubGaussianSpec{sigma, 2.0});
  Rng rng(55);
  int violations = 0;
  for (int64_t i = 0; i < rounds; ++i) {
    if (std::fabs(noise.Sample(&rng)) > delta) ++violations;
  }
  EXPECT_LE(violations, 1);  // Eq. (6): probability ≤ 1/T per full horizon
}

}  // namespace
}  // namespace pdm
