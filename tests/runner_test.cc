#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "market/linear_market.h"
#include "market/runner.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"

namespace pdm {
namespace {

NoisyLinearMarketConfig SmallMarket(int dim) {
  NoisyLinearMarketConfig config;
  config.feature_dim = dim;
  config.num_owners = 200;
  return config;
}

EllipsoidEngineConfig EngineFor(int dim, int64_t horizon, bool use_reserve,
                                double delta) {
  EllipsoidEngineConfig config;
  config.dim = dim;
  config.horizon = horizon;
  config.initial_radius = 2.0 * std::sqrt(static_cast<double>(dim));
  config.use_reserve = use_reserve;
  config.delta = delta;
  return config;
}

SimulationJob VariantScenario(const std::string& name, int dim, int64_t rounds,
                             bool use_reserve, double delta, uint64_t seed) {
  SimulationJob spec;
  spec.name = name;
  spec.seed = seed;
  spec.options.rounds = rounds;
  spec.make_stream = [dim](Rng* rng) {
    return std::make_unique<NoisyLinearQueryStream>(SmallMarket(dim), rng);
  };
  spec.make_engine = [dim, rounds, use_reserve, delta]() {
    return std::make_unique<EllipsoidPricingEngine>(
        EngineFor(dim, rounds, use_reserve, delta));
  };
  return spec;
}

/// The paper's four mechanism variants plus a second dimension — a ≥4-scenario
/// batch with distinct seeds, engines, and stream setups.
std::vector<SimulationJob> VariantBatch() {
  std::vector<SimulationJob> batch;
  batch.push_back(VariantScenario("pure/n=5", 5, 400, false, 0.0, 11));
  batch.push_back(VariantScenario("uncertainty/n=5", 5, 400, false, 0.01, 22));
  batch.push_back(VariantScenario("reserve/n=5", 5, 400, true, 0.0, 33));
  batch.push_back(
      VariantScenario("reserve+uncertainty/n=5", 5, 400, true, 0.01, 44));
  batch.push_back(VariantScenario("reserve/n=8", 8, 400, true, 0.0, 55));
  return batch;
}

void ExpectSameOutcome(const JobResult& a, const JobResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.engine_name, b.engine_name);
  const RegretTracker& ta = a.result.tracker;
  const RegretTracker& tb = b.result.tracker;
  EXPECT_EQ(ta.rounds(), tb.rounds());
  EXPECT_EQ(ta.sales(), tb.sales());
  // Bit-identical, not approximately equal: same seed ⇒ same draws ⇒ same
  // floating-point trajectory.
  EXPECT_EQ(ta.cumulative_regret(), tb.cumulative_regret());
  EXPECT_EQ(ta.cumulative_value(), tb.cumulative_value());
  EXPECT_EQ(ta.cumulative_revenue(), tb.cumulative_revenue());
  EXPECT_EQ(ta.baseline_cumulative_regret(), tb.baseline_cumulative_regret());
  EXPECT_EQ(ta.oracle_revenue(), tb.oracle_revenue());
  const EngineCounters& ca = a.result.engine_counters;
  const EngineCounters& cb = b.result.engine_counters;
  EXPECT_EQ(ca.rounds, cb.rounds);
  EXPECT_EQ(ca.exploratory_rounds, cb.exploratory_rounds);
  EXPECT_EQ(ca.conservative_rounds, cb.conservative_rounds);
  EXPECT_EQ(ca.skipped_rounds, cb.skipped_rounds);
  EXPECT_EQ(ca.cuts_applied, cb.cuts_applied);
  EXPECT_EQ(ca.cuts_discarded, cb.cuts_discarded);
}

TEST(SimulationRunner, ResultsInvariantAcrossThreadCounts) {
  std::vector<SimulationJob> batch = VariantBatch();
  std::vector<std::vector<JobResult>> runs;
  for (int threads : {1, 2, 8}) {
    RunnerOptions options;
    options.num_threads = threads;
    runs.push_back(SimulationRunner(options).RunAll(batch));
  }
  for (const auto& run : runs) ASSERT_EQ(run.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameOutcome(runs[0][i], runs[1][i]);
    ExpectSameOutcome(runs[0][i], runs[2][i]);
  }
}

TEST(SimulationRunner, MatchesSerialRunMarket) {
  std::vector<SimulationJob> batch = VariantBatch();
  RunnerOptions options;
  options.num_threads = 4;
  std::vector<JobResult> parallel = SimulationRunner(options).RunAll(batch);
  ASSERT_EQ(parallel.size(), batch.size());

  for (size_t i = 0; i < batch.size(); ++i) {
    // Hand-rolled serial equivalent of RunJob: one Rng per scenario,
    // stream construction first, then the market loop.
    Rng rng(batch[i].seed);
    std::unique_ptr<QueryStream> stream = batch[i].make_stream(&rng);
    std::unique_ptr<PricingEngine> engine = batch[i].make_engine();
    SimulationResult serial =
        RunMarket(stream.get(), engine.get(), batch[i].options, &rng);

    EXPECT_EQ(parallel[i].result.tracker.cumulative_regret(),
              serial.tracker.cumulative_regret());
    EXPECT_EQ(parallel[i].result.tracker.sales(), serial.tracker.sales());
    EXPECT_EQ(parallel[i].result.tracker.cumulative_revenue(),
              serial.tracker.cumulative_revenue());
    EXPECT_EQ(parallel[i].result.engine_counters.exploratory_rounds,
              serial.engine_counters.exploratory_rounds);
    EXPECT_EQ(parallel[i].result.engine_counters.cuts_applied,
              serial.engine_counters.cuts_applied);
  }
}

TEST(SimulationRunner, RepeatedRunsAreDeterministic) {
  std::vector<SimulationJob> batch = VariantBatch();
  SimulationRunner runner(RunnerOptions{/*num_threads=*/8});
  std::vector<JobResult> first = runner.RunAll(batch);
  std::vector<JobResult> second = runner.RunAll(batch);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectSameOutcome(first[i], second[i]);
  }
}

TEST(SimulationRunner, EmptyBatchReturnsEmpty) {
  SimulationRunner runner;
  EXPECT_TRUE(runner.RunAll({}).empty());
}

TEST(SimulationRunner, EmptyBatchReturnsEmptyOnEveryThreadCount) {
  for (int threads : {1, 2, 16}) {
    SimulationRunner runner(RunnerOptions{threads});
    EXPECT_TRUE(runner.RunAll({}).empty()) << "threads=" << threads;
  }
}

TEST(SimulationRunner, MoreThreadsThanScenarios) {
  // A 64-thread pool over a 2-scenario batch must neither hang nor distort
  // results: idle workers exit cleanly, outcomes match the serial path.
  std::vector<SimulationJob> batch = {
      VariantScenario("reserve/n=4", 4, 300, true, 0.0, 101),
      VariantScenario("pure/n=4", 4, 300, false, 0.0, 202),
  };
  std::vector<JobResult> wide =
      SimulationRunner(RunnerOptions{/*num_threads=*/64}).RunAll(batch);
  std::vector<JobResult> serial =
      SimulationRunner(RunnerOptions{/*num_threads=*/1}).RunAll(batch);
  ASSERT_EQ(wide.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameOutcome(wide[i], serial[i]);
  }
}

TEST(SimulationRunner, WorkerExceptionRethrownToCaller) {
  // A throwing scenario must surface on the calling thread (not terminate the
  // process), exactly as it would on the serial path.
  std::vector<SimulationJob> batch = VariantBatch();
  SimulationJob poison = batch[0];
  poison.name = "poison";
  poison.make_stream = [](Rng*) -> std::unique_ptr<QueryStream> {
    throw std::runtime_error("stream construction failed");
  };
  batch.insert(batch.begin() + 1, poison);

  SimulationRunner parallel(RunnerOptions{/*num_threads=*/4});
  EXPECT_THROW(parallel.RunAll(batch), std::runtime_error);
  SimulationRunner serial(RunnerOptions{/*num_threads=*/1});
  EXPECT_THROW(serial.RunAll(batch), std::runtime_error);
}

TEST(SimulationRunner, HealthyScenariosUnaffectedByThrowingSibling) {
  // The rethrow happens after the join, so the healthy scenarios still ran;
  // rerunning only them gives the same results as a clean batch.
  std::vector<SimulationJob> clean = VariantBatch();
  std::vector<JobResult> expected =
      SimulationRunner(RunnerOptions{/*num_threads=*/4}).RunAll(clean);

  std::vector<SimulationJob> dirty = VariantBatch();
  SimulationJob poison = dirty[0];
  poison.name = "poison";
  poison.make_engine = []() -> std::unique_ptr<PricingEngine> {
    throw std::runtime_error("engine construction failed");
  };
  dirty.push_back(poison);
  EXPECT_THROW(SimulationRunner(RunnerOptions{/*num_threads=*/4}).RunAll(dirty),
               std::runtime_error);

  std::vector<JobResult> again =
      SimulationRunner(RunnerOptions{/*num_threads=*/4}).RunAll(clean);
  ASSERT_EQ(again.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectSameOutcome(again[i], expected[i]);
  }
}

TEST(SimulationRunner, ZeroThreadsResolvesToHardwareConcurrency) {
  SimulationRunner runner(RunnerOptions{/*num_threads=*/0});
  EXPECT_GE(runner.num_threads(), 1);
}

TEST(SimulationRunner, ComparisonTableListsEveryScenario) {
  std::vector<SimulationJob> batch = VariantBatch();
  std::vector<JobResult> results =
      SimulationRunner(RunnerOptions{/*num_threads=*/4}).RunAll(batch);
  std::ostringstream os;
  PrintComparisonTable(results, os);
  const std::string table = os.str();
  for (const SimulationJob& spec : batch) {
    EXPECT_NE(table.find(spec.name), std::string::npos) << spec.name;
  }
  EXPECT_NE(table.find("regret%"), std::string::npos);
}

}  // namespace
}  // namespace pdm
