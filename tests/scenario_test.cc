// The declarative scenario layer: registry coverage of every paper exhibit,
// spec round-trips through the stream/mechanism factories, glob selection,
// sweep expansion, and — the load-bearing guarantee — bit-identical
// agreement between an ExperimentDriver run and the legacy hand-wired
// construction the dedicated bench binaries used before the refactor.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "market/adversarial.h"
#include "market/kernel_market.h"
#include "market/simulator.h"
#include "pricing/feature_maps.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/generalized_engine.h"
#include "pricing/interval_engine.h"
#include "pricing/link_functions.h"
#include "rng/subgaussian.h"
#include "scenario/experiment.h"
#include "scenario/linear_workload.h"
#include "scenario/mechanism_registry.h"
#include "scenario/scenario_registry.h"
#include "scenario/scenario_spec.h"
#include "scenario/stream_factory.h"

namespace pdm::scenario {
namespace {

// ------------------------------------------------------------------ registry

TEST(ScenarioRegistry, EnumeratesEveryPaperExhibit) {
  const ScenarioRegistry& registry = ScenarioRegistry::PaperExhibits();

  std::map<std::string, int> per_family;
  for (const ScenarioSpec& spec : registry.specs()) {
    per_family[spec.family] += 1;
    EXPECT_EQ(Validate(spec), "") << spec.name;
  }
  // 6 panels x 4 variants.
  EXPECT_EQ(per_family["fig4"], 24);
  // 4 variants (the risk-averse baseline rides along in the tracker).
  EXPECT_EQ(per_family["fig5a"], 4);
  // pure + three log-ratios.
  EXPECT_EQ(per_family["fig5b"], 4);
  // 2 hashed dims x {sparse honest, sparse oracle, dense}.
  EXPECT_EQ(per_family["fig5c"], 6);
  // 6 (n, T) configurations of the reserve variant.
  EXPECT_EQ(per_family["table1"], 6);
  // 5 dims x 4 variants.
  EXPECT_EQ(per_family["throughput"], 20);
  // T = 1e2..1e6.
  EXPECT_EQ(per_family["theorem3"], 5);
  // 5 seeds x 4 variants.
  EXPECT_EQ(per_family["coldstart"], 20);
  // delta sweep (5) + epsilon sweep (6).
  EXPECT_EQ(per_family["ablation"], 11);
  // landmark budgets {5, 10, 20, 40} + the misspecified run.
  EXPECT_EQ(per_family["kernel"], 5);
  // 7 doubling horizons x {safe, unsafe}.
  EXPECT_EQ(per_family["lemma8"], 14);
  EXPECT_EQ(registry.size(), 119u);

  // Spot-check the exact names the docs and CI reference.
  for (const char* name :
       {"fig4/b/reserve", "fig5a/pure", "fig5b/ratio=0.6", "fig5c/n=1024/dense",
        "table1/n=100", "throughput/reserve+uncertainty/n=50", "theorem3/T=1000000",
        "coldstart/s4/reserve", "ablation/delta/delta=0.02",
        "ablation/epsilon/epsilon=0.12", "kernel/m=40", "kernel/misspecified-linear",
        "lemma8/unsafe/T=3200"}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.Find("fig4/g/pure"), nullptr);
}

TEST(ScenarioRegistry, PinsThePapersScales) {
  const ScenarioRegistry& registry = ScenarioRegistry::PaperExhibits();
  const ScenarioSpec* fig5a = registry.Find("fig5a/reserve");
  ASSERT_NE(fig5a, nullptr);
  EXPECT_EQ(fig5a->n, 100);
  EXPECT_EQ(fig5a->rounds, 100000);
  EXPECT_EQ(fig5a->delta, 0.01);
  EXPECT_EQ(fig5a->sim_seed, 99u);

  const ScenarioSpec* fig4f = registry.Find("fig4/f/pure");
  ASSERT_NE(fig4f, nullptr);
  EXPECT_EQ(fig4f->n, 100);
  EXPECT_EQ(fig4f->rounds, 100000);
  // The legacy bench seeded each panel's workload with seed + dim.
  EXPECT_EQ(fig4f->workload_seed, 101u);

  const ScenarioSpec* fig5b = registry.Find("fig5b/ratio=0.8");
  ASSERT_NE(fig5b, nullptr);
  EXPECT_EQ(fig5b->rounds, 74111);
  EXPECT_EQ(fig5b->airbnb.log_reserve_ratio, 0.8);
  EXPECT_EQ(fig5b->link, LinkKind::kExp);

  const ScenarioSpec* sparse1024 = registry.Find("fig5c/n=1024/sparse-honest");
  ASSERT_NE(sparse1024, nullptr);
  EXPECT_EQ(sparse1024->rounds, 20000);  // the O(n^2) default reduction
  const ScenarioSpec* dense1024 = registry.Find("fig5c/n=1024/dense");
  ASSERT_NE(dense1024, nullptr);
  EXPECT_EQ(dense1024->rounds, 100000);
}

TEST(ScenarioRegistry, MatchSelectsByGlobAndFamily) {
  const ScenarioRegistry& registry = ScenarioRegistry::PaperExhibits();
  EXPECT_EQ(registry.Match("fig4").size(), 24u);        // bare family name
  EXPECT_EQ(registry.Match("fig4/*").size(), 24u);      // name glob
  EXPECT_EQ(registry.Match("fig4/b/*").size(), 4u);     // one panel
  EXPECT_EQ(registry.Match("fig4/b/*,table1").size(), 10u);
  EXPECT_EQ(registry.Match("fig4,fig4/*").size(), 24u);  // deduped
  EXPECT_EQ(registry.Match("throughput/*/n=2").size(), 4u);
  EXPECT_EQ(registry.Match("throughput/*/n=2?").size(), 4u);  // n=20 only
  EXPECT_EQ(registry.Match("*").size(), registry.size());
  EXPECT_TRUE(registry.Match("does-not-exist").empty());
  EXPECT_TRUE(registry.Match("").empty());

  // Selection preserves registration order.
  std::vector<ScenarioSpec> panel = registry.Match("fig4/b/*");
  ASSERT_EQ(panel.size(), 4u);
  EXPECT_EQ(panel[0].mechanism, "pure");
  EXPECT_EQ(panel[3].mechanism, "reserve+uncertainty");
}

TEST(ScenarioRegistry, RejectsDuplicateNames) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "custom/run";
  registry.Add(spec);
  EXPECT_DEATH(registry.Add(spec), "");
}

TEST(Sweep, ExpandsOneAxisWithNamedPoints) {
  ScenarioSpec base;
  base.name = "grid";
  base.stream = StreamKind::kLinear;
  std::vector<ScenarioSpec> specs = Sweep(base, "n", {2, 5, 10, 20, 50});
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "grid/n=2");
  EXPECT_EQ(specs[0].n, 2);
  EXPECT_EQ(specs[4].name, "grid/n=50");
  EXPECT_EQ(specs[4].n, 50);

  std::vector<ScenarioSpec> deltas = Sweep(base, "delta", {0.005, 0.01});
  EXPECT_EQ(deltas[0].name, "grid/delta=0.005");
  EXPECT_EQ(deltas[0].delta, 0.005);

  EXPECT_DEATH(Sweep(base, "not-a-field", {1.0}), "");
}

// ------------------------------------------------------------------ mechanisms

TEST(MechanismRegistry, BuiltinNamesAndTraits) {
  const MechanismRegistry& registry = MechanismRegistry::Builtin();
  EXPECT_EQ(registry.Names(),
            (std::vector<std::string>{"pure", "uncertainty", "reserve",
                                      "reserve+uncertainty", "reserve-unsafe",
                                      "risk-averse"}));
  EXPECT_FALSE(registry.Find("pure")->use_reserve);
  EXPECT_TRUE(registry.Find("uncertainty")->uncertainty);
  EXPECT_TRUE(registry.Find("reserve")->use_reserve);
  EXPECT_FALSE(registry.Find("reserve")->uncertainty);
  EXPECT_TRUE(registry.Find("reserve-unsafe")->allow_conservative_cuts);
  EXPECT_TRUE(registry.Find("risk-averse")->risk_averse_baseline);
  EXPECT_FALSE(registry.Contains("nope"));
}

TEST(MechanismRegistry, BuildsTheEngineFamilyTheSpecImplies) {
  ScenarioSpec spec;
  spec.mechanism = "reserve+uncertainty";
  spec.rounds = 1000;
  spec.delta = 0.01;
  WorkloadInfo info;
  info.engine_dim = 8;
  info.initial_radius = 4.0;
  std::unique_ptr<PricingEngine> engine = MechanismRegistry::Builtin().Build(spec, info);
  auto* ellipsoid = dynamic_cast<EllipsoidPricingEngine*>(engine.get());
  ASSERT_NE(ellipsoid, nullptr);
  EXPECT_EQ(ellipsoid->dim(), 8);
  EXPECT_EQ(ellipsoid->config().delta, 0.01);
  EXPECT_TRUE(ellipsoid->config().use_reserve);

  // The uncertainty flag gates delta: "reserve" ignores the spec's buffer.
  spec.mechanism = "reserve";
  engine = MechanismRegistry::Builtin().Build(spec, info);
  EXPECT_EQ(dynamic_cast<EllipsoidPricingEngine*>(engine.get())->config().delta, 0.0);

  // One-dimensional workloads route to the interval engine.
  info.engine_dim = 1;
  engine = MechanismRegistry::Builtin().Build(spec, info);
  EXPECT_NE(dynamic_cast<IntervalPricingEngine*>(engine.get()), nullptr);

  // Non-identity links wrap the base in the generalized adapter.
  info.engine_dim = 8;
  spec.link = LinkKind::kExp;
  engine = MechanismRegistry::Builtin().Build(spec, info);
  EXPECT_NE(dynamic_cast<GeneralizedPricingEngine*>(engine.get()), nullptr);

  spec.link = LinkKind::kIdentity;
  spec.mechanism = "unknown-mechanism";
  EXPECT_DEATH(MechanismRegistry::Builtin().Build(spec, info), "");
}

TEST(MechanismRegistry, CustomRegistration) {
  MechanismRegistry registry;
  MechanismTraits aggressive;
  aggressive.use_reserve = true;
  registry.Register("my-variant", aggressive);
  EXPECT_TRUE(registry.Contains("my-variant"));
  // Re-registering overrides in place.
  aggressive.uncertainty = true;
  registry.Register("my-variant", aggressive);
  EXPECT_TRUE(registry.Find("my-variant")->uncertainty);
}

// ------------------------------------------------------------------ factories

TEST(StreamFactory, LinearWorkloadIsCachedByKey) {
  StreamFactory factory;
  ScenarioSpec a;
  a.stream = StreamKind::kLinear;
  a.n = 4;
  a.rounds = 200;
  a.linear.num_owners = 50;
  a.workload_seed = 3;
  ScenarioSpec b = a;
  b.mechanism = "pure";  // mechanism must not affect the workload identity
  b.sim_seed = 123;

  factory.Prepare(a);
  const LinearWorkload* first = factory.FindLinearWorkload(a);
  factory.Prepare(b);
  EXPECT_EQ(factory.FindLinearWorkload(b), first);

  ScenarioSpec c = a;
  c.workload_seed = 4;
  factory.Prepare(c);
  EXPECT_NE(factory.FindLinearWorkload(c), first);
}

TEST(StreamFactory, SpecsRoundTripThroughTheFactories) {
  StreamFactory factory;

  // Linear: replay stream over the cached workload, engine over n dims.
  {
    ScenarioSpec spec;
    spec.name = "roundtrip/linear";
    spec.stream = StreamKind::kLinear;
    spec.mechanism = "reserve";
    spec.n = 6;
    spec.rounds = 300;
    spec.linear.num_owners = 40;
    WorkloadInfo info = factory.Prepare(spec);
    EXPECT_EQ(info.engine_dim, 6);
    EXPECT_GT(info.initial_radius, 0.0);
    Rng rng(spec.sim_seed);
    std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
    ASSERT_NE(stream, nullptr);
    MarketRound round = stream->Next(&rng);
    EXPECT_EQ(static_cast<int>(round.features.size()), 6);
    std::unique_ptr<PricingEngine> engine =
        MechanismRegistry::Builtin().Build(spec, info);
    EXPECT_EQ(engine->dim(), 6);
  }

  // Kernel: engine prices the landmark image; misspecified prices raw x.
  {
    ScenarioSpec spec;
    spec.name = "roundtrip/kernel";
    spec.stream = StreamKind::kKernel;
    spec.mechanism = "reserve";
    spec.n = 5;
    spec.kernel.input_dim = 3;
    spec.rounds = 100;
    WorkloadInfo info = factory.Prepare(spec);
    EXPECT_EQ(info.engine_dim, 5);
    EXPECT_NE(info.kernel_map, nullptr);

    ScenarioSpec raw = spec;
    raw.kernel.misspecified_linear = true;
    WorkloadInfo raw_info = factory.Prepare(raw);
    EXPECT_EQ(raw_info.engine_dim, 3);
    EXPECT_EQ(raw_info.kernel_map, nullptr);
  }

  // Adversarial: Lemma 8 geometry (R = 1) regardless of mechanism.
  {
    ScenarioSpec spec;
    spec.name = "roundtrip/adversarial";
    spec.stream = StreamKind::kAdversarial;
    spec.mechanism = "reserve-unsafe";
    spec.n = 2;
    spec.rounds = 100;
    WorkloadInfo info = factory.Prepare(spec);
    EXPECT_EQ(info.engine_dim, 2);
    EXPECT_EQ(info.initial_radius, 1.0);
    Rng rng(spec.sim_seed);
    EXPECT_NE(factory.CreateStream(spec, &rng), nullptr);
  }
}

TEST(StreamFactory, RejectsInvalidSpecs) {
  StreamFactory factory;
  ScenarioSpec spec;
  spec.name = "bad/mechanism";
  spec.mechanism = "definitely-not-registered";
  EXPECT_DEATH(factory.Prepare(spec), "");

  ScenarioSpec mismatched;
  mismatched.name = "bad/link";
  mismatched.stream = StreamKind::kAirbnb;
  mismatched.link = LinkKind::kIdentity;  // airbnb is log-linear
  mismatched.n = 55;
  EXPECT_DEATH(factory.Prepare(mismatched), "");
}

TEST(Validate, ReportsTheFirstProblem) {
  ScenarioSpec spec;
  EXPECT_EQ(Validate(spec), "");
  spec.rounds = 0;
  EXPECT_NE(Validate(spec), "");
  spec.rounds = 100;
  spec.stream = StreamKind::kAdversarial;
  spec.n = 1;
  EXPECT_NE(Validate(spec), "");
}

// ------------------------------------------------------- legacy equivalence
//
// The hand-wired constructions below replicate, line for line, what the
// pre-refactor bench binaries did (bench_common.h's MakeLinearVariantEngine
// + NoisyReplayStream + Rng(sim_seed), and bench_kernel_pricing's inline
// wiring). The driver must reproduce them bit for bit.

struct LegacyVariant {
  const char* label;
  bool use_reserve;
  bool uncertainty;
};

constexpr LegacyVariant kLegacyVariants[] = {
    {"pure", false, false},
    {"uncertainty", false, true},
    {"reserve", true, false},
    {"reserve+uncertainty", true, true},
};

SimulationResult RunLegacyLinearVariant(const LinearWorkload& workload,
                                        const LegacyVariant& variant, int dim,
                                        int64_t rounds, double delta,
                                        int64_t series_stride, uint64_t sim_seed) {
  double engine_delta = variant.uncertainty ? delta : 0.0;
  std::unique_ptr<PricingEngine> engine;
  if (dim == 1) {
    IntervalEngineConfig config;
    config.theta_min = 0.0;
    config.theta_max = 2.0;
    config.horizon = rounds;
    config.delta = engine_delta;
    config.use_reserve = variant.use_reserve;
    engine = std::make_unique<IntervalPricingEngine>(config);
  } else {
    EllipsoidEngineConfig config;
    config.dim = dim;
    config.horizon = rounds;
    config.initial_radius = workload.recommended_radius;
    config.delta = engine_delta;
    config.use_reserve = variant.use_reserve;
    engine = std::make_unique<EllipsoidPricingEngine>(config);
  }
  double noise_sigma =
      variant.uncertainty ? SigmaForBuffer(delta, 2.0, rounds) : 0.0;
  NoisyReplayStream stream(&workload.rounds, noise_sigma);
  SimulationOptions options;
  options.rounds = rounds;
  options.series_stride = series_stride;
  Rng rng(sim_seed);
  return RunMarket(&stream, engine.get(), options, &rng);
}

void ExpectBitIdentical(const SimulationResult& actual, const SimulationResult& expected,
                        const std::string& label) {
  EXPECT_EQ(actual.tracker.rounds(), expected.tracker.rounds()) << label;
  EXPECT_EQ(actual.tracker.sales(), expected.tracker.sales()) << label;
  EXPECT_EQ(actual.tracker.cumulative_regret(), expected.tracker.cumulative_regret())
      << label;
  EXPECT_EQ(actual.tracker.cumulative_value(), expected.tracker.cumulative_value())
      << label;
  EXPECT_EQ(actual.tracker.regret_ratio(), expected.tracker.regret_ratio()) << label;
  EXPECT_EQ(actual.tracker.baseline_regret_ratio(),
            expected.tracker.baseline_regret_ratio())
      << label;
  EXPECT_EQ(actual.engine_counters.exploratory_rounds,
            expected.engine_counters.exploratory_rounds)
      << label;
  EXPECT_EQ(actual.engine_counters.cuts_applied, expected.engine_counters.cuts_applied)
      << label;
  ASSERT_EQ(actual.tracker.series().size(), expected.tracker.series().size()) << label;
  for (size_t i = 0; i < actual.tracker.series().size(); ++i) {
    EXPECT_EQ(actual.tracker.series()[i].cumulative_regret,
              expected.tracker.series()[i].cumulative_regret)
        << label << " series point " << i;
  }
}

TEST(ExperimentDriver, Fig5aGridMatchesLegacyWiringBitForBit) {
  const int dim = 8;
  const int64_t rounds = 1200;
  const int64_t owners = 120;
  const double delta = 0.01;

  std::vector<ScenarioSpec> specs = Fig5aScenarios(dim, rounds, owners, delta, 1);
  ASSERT_EQ(specs.size(), 4u);
  ExperimentDriver driver;
  std::vector<ScenarioOutcome> outcomes = driver.Run(specs);

  LinearWorkload workload = MakeLinearWorkload(dim, rounds, owners, 1);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    SimulationResult expected = RunLegacyLinearVariant(
        workload, kLegacyVariants[i], dim, rounds, delta, specs[i].series_stride, 99);
    ExpectBitIdentical(outcomes[i].result, expected, specs[i].name);
  }
}

TEST(ExperimentDriver, ThroughputScenarioMatchesLegacyWiringBitForBit) {
  std::vector<ScenarioSpec> specs = ThroughputScenarios(
      /*rounds=*/1500, /*workload_rounds=*/256, /*num_owners=*/64, /*delta=*/0.01,
      /*seed=*/1);
  // One spec per variant at n = 2 (the first four entries).
  specs.resize(4);
  ExperimentDriver driver;
  std::vector<ScenarioOutcome> outcomes = driver.Run(specs);

  LinearWorkload workload = MakeLinearWorkload(2, 256, 64, 1);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    SimulationResult expected =
        RunLegacyLinearVariant(workload, kLegacyVariants[i], 2, 1500, 0.01,
                               /*series_stride=*/0, /*sim_seed=*/1 + 2);
    ExpectBitIdentical(outcomes[i].result, expected, specs[i].name);
  }
}

TEST(ExperimentDriver, Table1ScenarioMatchesLegacyWiringBitForBit) {
  std::vector<ScenarioSpec> specs = Table1Scenarios(/*num_owners=*/80, /*full=*/false,
                                                    /*seed=*/1);
  // n = 20 at the smoke scale (rounds / 10).
  ScenarioSpec spec = specs[1];
  ASSERT_EQ(spec.n, 20);
  ASSERT_EQ(spec.rounds, 1000);
  ExperimentDriver driver;
  std::vector<ScenarioOutcome> outcomes = driver.Run({spec});

  LinearWorkload workload = MakeLinearWorkload(20, 1000, 80, 1 + 20);
  SimulationResult expected = RunLegacyLinearVariant(
      workload, kLegacyVariants[2], 20, 1000, 0.0, /*series_stride=*/0, 99);
  ExpectBitIdentical(outcomes[0].result, expected, spec.name);
  // Table I consumes the per-round stats; pin those too.
  EXPECT_EQ(outcomes[0].result.tracker.value_stats().mean(),
            expected.tracker.value_stats().mean());
  EXPECT_EQ(outcomes[0].result.tracker.price_stats().stddev(),
            expected.tracker.price_stats().stddev());
}

TEST(ExperimentDriver, KernelScenarioMatchesLegacyWiringBitForBit) {
  std::vector<ScenarioSpec> specs = KernelScenarios(/*rounds=*/800, /*seed=*/9);
  ScenarioSpec spec = specs[1];  // kernel/m=10
  ASSERT_EQ(spec.n, 10);
  ExperimentDriver driver;
  std::vector<ScenarioOutcome> outcomes = driver.Run({spec});

  // bench_kernel_pricing's RunKernelEngine, verbatim.
  KernelMarketConfig config;
  Rng rng(9);
  KernelQueryStream stream(config, &rng);
  EllipsoidEngineConfig base_config;
  base_config.dim = config.num_landmarks;
  base_config.horizon = 800;
  base_config.initial_radius = stream.RecommendedRadius();
  base_config.use_reserve = true;
  GeneralizedPricingEngine engine(
      std::make_unique<EllipsoidPricingEngine>(base_config),
      std::make_shared<IdentityLink>(),
      std::make_shared<KernelFeatureMap>(stream.feature_map()));
  SimulationOptions options;
  options.rounds = 800;
  SimulationResult expected = RunMarket(&stream, &engine, options, &rng);
  ExpectBitIdentical(outcomes[0].result, expected, spec.name);
}

TEST(ExperimentDriver, AdversarialScenarioMatchesLegacyWiringBitForBit) {
  std::vector<ScenarioSpec> specs;
  for (const ScenarioSpec& spec : Lemma8Scenarios(/*max_horizon=*/200)) {
    specs.push_back(spec);
  }
  ASSERT_EQ(specs.size(), 6u);  // T in {50, 100, 200} x {safe, unsafe}
  ExperimentDriver driver;
  std::vector<ScenarioOutcome> outcomes = driver.Run(specs);

  for (const ScenarioOutcome& outcome : outcomes) {
    // bench_lemma8_adversarial's RunAdversary, verbatim.
    AdversarialStreamConfig stream_config;
    stream_config.dim = 2;
    stream_config.horizon = outcome.spec.rounds;
    AdversarialQueryStream stream(stream_config);
    EllipsoidEngineConfig config;
    config.dim = 2;
    config.horizon = outcome.spec.rounds;
    config.initial_radius = 1.0;
    config.use_reserve = true;
    config.allow_conservative_cuts = outcome.spec.mechanism == "reserve-unsafe";
    EllipsoidPricingEngine engine(config);
    SimulationOptions options;
    options.rounds = outcome.spec.rounds;
    Rng rng(4);
    SimulationResult expected = RunMarket(&stream, &engine, options, &rng);
    ExpectBitIdentical(outcome.result, expected, outcome.spec.name);
  }
}

// --------------------------------------------------------------- the driver

TEST(ExperimentDriver, OutcomeIsIndependentOfThreadCount) {
  std::vector<ScenarioSpec> specs = Fig5aScenarios(6, 800, 60, 0.01, 5);
  std::vector<ScenarioSpec> more = Table1Scenarios(60, false, 5);
  specs.insert(specs.end(), more.begin(), more.begin() + 3);

  RunOptions serial;
  serial.num_threads = 1;
  std::vector<ScenarioOutcome> a = ExperimentDriver(serial).Run(specs);
  RunOptions wide;
  wide.num_threads = 8;
  std::vector<ScenarioOutcome> b = ExperimentDriver(wide).Run(specs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ExpectBitIdentical(a[i].result, b[i].result, specs[i].name);
  }
}

TEST(ExperimentDriver, MaxRoundsCapsHorizonAndWorkload) {
  ScenarioSpec spec;
  spec.name = "capped";
  spec.stream = StreamKind::kLinear;
  spec.n = 4;
  spec.rounds = 100000;
  spec.linear.workload_rounds = 50000;
  spec.linear.num_owners = 30;
  spec.series_stride = 60000;

  RunOptions options;
  options.max_rounds = 500;
  ExperimentDriver driver(options);
  ScenarioSpec capped = driver.Capped(spec);
  EXPECT_EQ(capped.rounds, 500);
  EXPECT_EQ(capped.linear.workload_rounds, 500);
  EXPECT_EQ(capped.series_stride, 0);  // stride beyond the horizon is dropped

  std::vector<ScenarioOutcome> outcomes = driver.Run({spec});
  EXPECT_EQ(outcomes[0].spec.rounds, 500);
  EXPECT_EQ(outcomes[0].result.tracker.rounds(), 500);
}

TEST(ExperimentDriver, RunJsonDocumentCarriesTheBatch) {
  std::vector<ScenarioSpec> specs = Fig5aScenarios(4, 300, 30, 0.01, 2);
  specs.resize(2);
  specs[0].series_stride = 100;
  ExperimentDriver driver;
  std::vector<ScenarioOutcome> outcomes = driver.Run(specs);

  RunMetadata meta;
  meta.generator = "scenario_test";
  meta.selection = "fig5a/*";
  meta.include_series = true;
  std::ostringstream os;
  WriteRunJson(os, meta, outcomes);
  std::string doc = os.str();

  EXPECT_NE(doc.find("\"schema\": \"pdm.run.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"generator\": \"scenario_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"scenario\": \"fig5a/pure\""), std::string::npos);
  EXPECT_NE(doc.find("\"stream\": \"linear\""), std::string::npos);
  // The pdm.bench_throughput.v1 compatibility keys must be present.
  for (const char* key : {"\"variant\"", "\"dim\"", "\"rounds\"", "\"wall_seconds\"",
                          "\"rounds_per_sec\"", "\"ns_per_round\"", "\"rss_bytes\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
  EXPECT_NE(doc.find("\"series\""), std::string::npos);
  // Balanced braces/brackets (the writer enforces this structurally; this
  // guards the call-site pairing in WriteRunJson).
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
}

}  // namespace
}  // namespace pdm::scenario
