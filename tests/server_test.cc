// The TCP serving front end (DESIGN.md §10): wire codec round trips, the
// loopback replay pin (a scenario driven through the TCP server is
// bit-identical to driving the broker in-process), pipelined-run coalescing
// equivalence, wire batch-op parity, malformed-frame handling, concurrent
// clients (the TSan target), and graceful drain.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"

#include "broker/broker.h"
#include "broker/driver.h"
#include "broker/snapshot.h"
#include "market/regret_tracker.h"
#include "market/round.h"
#include "rng/rng.h"
#include "scenario/scenario_spec.h"
#include "scenario/stream_factory.h"
#include "server/client.h"
#include "server/net.h"
#include "server/server.h"
#include "server/wire.h"

namespace pdm::server {
namespace {

using broker::Broker;
using broker::FeedbackRequest;
using broker::HandleRequest;
using broker::ProductHandle;
using broker::Quote;
using broker::SessionSnapshot;
using scenario::ScenarioSpec;
using scenario::StreamFactory;

ScenarioSpec LinearSpec(const std::string& name, int n, int64_t rounds,
                        const std::string& mechanism, uint64_t workload_seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.family = "servertest";
  spec.stream = scenario::StreamKind::kLinear;
  spec.mechanism = mechanism;
  spec.n = n;
  spec.rounds = rounds;
  spec.delta = 0.01;
  spec.linear.num_owners = 200;
  spec.workload_seed = workload_seed;
  spec.sim_seed = 99;
  return spec;
}

void OpenSpec(Broker* broker, StreamFactory* factory, const ScenarioSpec& spec) {
  ASSERT_TRUE(broker->OpenSession(spec.name, spec, factory->Prepare(spec)).ok());
}

std::string SnapshotBytes(const Broker& broker, const std::string& product) {
  SessionSnapshot snap;
  Status s = broker.Snapshot(product, &snap);
  PDM_CHECK(s.ok());
  return broker::EncodeSessionSnapshot(snap);
}

// ------------------------------------------------------------ wire codec

TEST(Wire, PrimitivesRoundTripBitExactly) {
  std::string bytes;
  WireWriter w(&bytes);
  size_t frame = w.BeginFrame();
  w.PutU8(0x7F);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutF64(-0.1);  // not exactly representable: the bits must survive
  w.PutF64(std::numeric_limits<double>::quiet_NaN());
  w.PutString("pdm/\xE2\x82\xAC");  // embedded UTF-8 stays raw bytes
  w.EndFrame(frame);

  std::string_view payload;
  size_t next = 0;
  ASSERT_EQ(NextFrame(bytes, 0, &payload, &next), FrameResult::kFrame);
  EXPECT_EQ(next, bytes.size());

  WireReader r(payload);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  double f1, f2;
  std::string_view s;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetF64(&f1));
  ASSERT_TRUE(r.GetF64(&f2));
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 0x7F);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(f1, -0.1);
  EXPECT_TRUE(std::isnan(f2));
  EXPECT_EQ(s, "pdm/\xE2\x82\xAC");

  // Truncated reads report failure instead of reading past the end.
  WireReader truncated(payload.substr(0, 3));
  ASSERT_TRUE(truncated.GetU8(&u8));
  EXPECT_FALSE(truncated.GetU32(&u32));
}

TEST(Wire, FrameSplitHandlesPartialAndMalformed) {
  std::string bytes;
  WireWriter w(&bytes);
  size_t frame = w.BeginFrame();
  w.PutU64(42);
  w.EndFrame(frame);

  std::string_view payload;
  size_t next = 0;
  // Every strict prefix is incomplete.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(NextFrame(std::string_view(bytes).substr(0, cut), 0, &payload, &next),
              FrameResult::kNeedMore);
  }
  ASSERT_EQ(NextFrame(bytes, 0, &payload, &next), FrameResult::kFrame);
  EXPECT_EQ(payload.size(), 8u);

  // A length prefix beyond the cap is a framing violation.
  std::string huge;
  WireWriter hw(&huge);
  hw.PutU32(static_cast<uint32_t>(kMaxFramePayloadBytes + 1));
  EXPECT_EQ(NextFrame(huge, 0, &payload, &next), FrameResult::kMalformed);
}

// --------------------------------------------------- basic round trips

TEST(TcpServer, PingResolveAndErrorsRoundTrip) {
  StreamFactory factory;
  Broker broker;
  ScenarioSpec spec = LinearSpec("wire/basic", 6, 500, "reserve", 21);
  OpenSpec(&broker, &factory, spec);

  TcpServer server(&broker);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());

  // Resolve over the wire must agree with the in-process directory.
  ProductHandle wire_handle, local_handle;
  ASSERT_TRUE(client.Resolve(spec.name, &wire_handle).ok());
  ASSERT_TRUE(broker.Resolve(spec.name, &local_handle).ok());
  EXPECT_EQ(wire_handle, local_handle);

  // Errors arrive as reconstructed Status with code AND message.
  Status missing = client.Resolve("no/such/product", &wire_handle);
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_FALSE(missing.message().empty());

  // A stale handle fails with NotFound end to end.
  Quote quote;
  std::vector<double> x(6, 0.1);
  ProductHandle stale{local_handle.index, local_handle.generation + 2};
  EXPECT_EQ(client.PostPrice(stale, x, 0.0, &quote).code(), StatusCode::kNotFound);
  EXPECT_EQ(quote.ticket, 0u);

  // EstimateValue returns the exact bits the broker computes.
  ValueInterval wire_iv, local_iv;
  ASSERT_TRUE(client.EstimateValue(local_handle, x, &wire_iv).ok());
  ASSERT_TRUE(broker.EstimateValue(local_handle, x, &local_iv).ok());
  EXPECT_EQ(wire_iv.lower, local_iv.lower);
  EXPECT_EQ(wire_iv.upper, local_iv.upper);

  server.Stop();
  EXPECT_FALSE(server.running());
}

// ------------------------------------------------- the loopback replay pin

// The acceptance pin: a scenario replayed through the TCP server on
// loopback — same seeds, immediate ticketed feedback — produces the same
// quotes, accepts, and regret accounting as RunScenarioThroughBroker, and
// leaves the engine in the byte-identical state.
TEST(TcpServer, ScenarioThroughTcpIsBitIdenticalToInProcess) {
  const char* kMechanisms[] = {"pure", "reserve+uncertainty"};
  for (const char* mechanism : kMechanisms) {
    SCOPED_TRACE(mechanism);
    ScenarioSpec spec = LinearSpec(std::string("wire/replay/") + mechanism, 8,
                                   1500, mechanism, 33);

    // In-process reference.
    StreamFactory ref_factory;
    Broker ref_broker;
    broker::BrokerRunOutcome reference =
        broker::RunScenarioThroughBroker(spec, &ref_factory, &ref_broker);

    // The same spec through TCP.
    StreamFactory factory;
    Broker broker;
    OpenSpec(&broker, &factory, spec);
    TcpServer server(&broker);
    ASSERT_TRUE(server.Start().ok());
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ProductHandle handle;
    ASSERT_TRUE(client.Resolve(spec.name, &handle).ok());

    // Driver loop, verbatim, with the driver's exact Rng lifecycle — just
    // with the broker calls replaced by wire calls.
    Rng rng(spec.sim_seed);
    std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
    stream->BindEngine(broker.FindEngine(spec.name));
    RegretTracker tracker(spec.series_stride);
    MarketRound round;
    Quote quote;
    PostedPrice posted;
    for (int64_t t = 0; t < spec.rounds; ++t) {
      stream->Next(&rng, &round);
      ASSERT_TRUE(client.PostPrice(handle, round.features, round.reserve, &quote).ok());
      bool accepted = !quote.certain_no_sale && quote.price <= round.value;
      ASSERT_TRUE(client.Observe(quote.ticket, accepted).ok());
      posted.price = quote.price;
      posted.exploratory = quote.exploratory;
      posted.certain_no_sale = quote.certain_no_sale;
      tracker.Observe(round, posted, accepted);
    }
    server.Stop();

    // Regret accounting: exact double equality, not tolerance.
    const RegretTracker& ref = reference.result.tracker;
    EXPECT_EQ(tracker.rounds(), ref.rounds());
    EXPECT_EQ(tracker.sales(), ref.sales());
    EXPECT_EQ(tracker.cumulative_regret(), ref.cumulative_regret());
    EXPECT_EQ(tracker.cumulative_revenue(), ref.cumulative_revenue());
    EXPECT_EQ(tracker.oracle_revenue(), ref.oracle_revenue());

    // Engine state: byte-identical snapshots.
    EXPECT_EQ(SnapshotBytes(broker, spec.name), SnapshotBytes(ref_broker, spec.name));
  }
}

// ------------------------------------------------------- coalescing

// Pipelined single-op frames are coalesced into batched broker calls —
// and that rewrite must be invisible: same quotes, same final engine state
// as the same requests issued sequentially.
TEST(TcpServer, PipelinedRunsCoalesceAndMatchSequential) {
  ScenarioSpec spec = LinearSpec("wire/pipeline", 6, 4000, "reserve", 44);
  constexpr int kRounds = 120;
  constexpr int kBatch = 8;

  // Twin A: pipelined through TCP.
  StreamFactory factory_a;
  Broker broker_a;
  OpenSpec(&broker_a, &factory_a, spec);
  // Twin B: sequential in-process calls.
  StreamFactory factory_b;
  Broker broker_b;
  OpenSpec(&broker_b, &factory_b, spec);
  ProductHandle handle_b;
  ASSERT_TRUE(broker_b.Resolve(spec.name, &handle_b).ok());

  TcpServer server(&broker_a);
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ProductHandle handle_a;
  ASSERT_TRUE(client.Resolve(spec.name, &handle_a).ok());

  // Shared deterministic query sequence.
  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory_a.CreateStream(spec, &rng);
  std::vector<MarketRound> rounds(kRounds);
  for (MarketRound& round : rounds) stream->Next(&rng, &round);

  for (int base = 0; base < kRounds; base += kBatch) {
    // Pipeline a run of kBatch PostPrice frames in ONE flush.
    for (int k = 0; k < kBatch; ++k) {
      const MarketRound& round = rounds[base + k];
      client.QueuePostPrice(handle_a, round.features, round.reserve);
    }
    ASSERT_TRUE(client.Flush().ok());
    std::vector<Quote> wire_quotes(kBatch);
    for (int k = 0; k < kBatch; ++k) {
      Response resp;
      ASSERT_TRUE(client.ReadResponse(&resp).ok());
      ASSERT_TRUE(resp.status.ok());
      wire_quotes[k] = resp.quote;
    }
    // Sequential twin must produce bit-identical quotes.
    for (int k = 0; k < kBatch; ++k) {
      const MarketRound& round = rounds[base + k];
      Quote seq_quote;
      ASSERT_TRUE(
          broker_b.PostPrice(handle_b, round.features, round.reserve, &seq_quote).ok());
      EXPECT_EQ(wire_quotes[k].ticket, seq_quote.ticket);
      EXPECT_EQ(wire_quotes[k].price, seq_quote.price);
      EXPECT_EQ(wire_quotes[k].exploratory, seq_quote.exploratory);
      EXPECT_EQ(wire_quotes[k].certain_no_sale, seq_quote.certain_no_sale);
    }
    // Feedback: a pipelined Observe run for A, sequential for B.
    for (int k = 0; k < kBatch; ++k) {
      const MarketRound& round = rounds[base + k];
      bool accepted =
          !wire_quotes[k].certain_no_sale && wire_quotes[k].price <= round.value;
      client.QueueObserve(wire_quotes[k].ticket, accepted);
      ASSERT_TRUE(broker_b.Observe(wire_quotes[k].ticket, accepted).ok());
    }
    ASSERT_TRUE(client.Flush().ok());
    for (int k = 0; k < kBatch; ++k) {
      Response resp;
      ASSERT_TRUE(client.ReadResponse(&resp).ok());
      EXPECT_TRUE(resp.status.ok());
    }
  }

  // The server must actually have taken the coalesced path.
  ServerStats stats = server.stats();
  EXPECT_GT(stats.coalesced_runs, 0);
  EXPECT_GT(stats.frames_coalesced, 0);
  // The memory-engine occupancy lives on Broker::Stats() (the duplicated
  // ServerStats block moved to the shared metric registry): one open,
  // resident, never-evicted session in one live slab slot.
  pdm::broker::BrokerStats occupancy = broker_a.Stats();
  EXPECT_EQ(occupancy.open_sessions, 1u);
  EXPECT_EQ(occupancy.resident_sessions, 1u);
  EXPECT_EQ(occupancy.evicted_sessions, 0u);
  EXPECT_EQ(occupancy.slab_live_slots, 1u);
  EXPECT_EQ(occupancy.slab_tombstoned_slots, 0u);
  EXPECT_EQ(occupancy.evictions, 0u);
  EXPECT_EQ(occupancy.fault_ins, 0u);
  EXPECT_EQ(occupancy.spill_bytes, 0u);
  server.Stop();

  EXPECT_EQ(SnapshotBytes(broker_a, spec.name), SnapshotBytes(broker_b, spec.name));
}

// ------------------------------------------------------ wire batch ops

TEST(TcpServer, WireBatchOpsMirrorBrokerBatchSemantics) {
  ScenarioSpec spec = LinearSpec("wire/batch", 5, 2000, "uncertainty", 55);
  StreamFactory factory_a, factory_b;
  Broker broker_a, broker_b;
  OpenSpec(&broker_a, &factory_a, spec);
  OpenSpec(&broker_b, &factory_b, spec);
  ProductHandle handle_b;
  ASSERT_TRUE(broker_b.Resolve(spec.name, &handle_b).ok());

  TcpServer server(&broker_a);
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ProductHandle handle_a;
  ASSERT_TRUE(client.Resolve(spec.name, &handle_a).ok());

  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory_a.CreateStream(spec, &rng);
  constexpr int kBatch = 6;
  std::vector<MarketRound> rounds(kBatch);
  for (MarketRound& round : rounds) stream->Next(&rng, &round);

  // Position 2 targets a dead handle: the batch must not abort, the item
  // must carry NotFound, and the returned Status is that first error.
  auto build = [&](ProductHandle good) {
    std::vector<HandleRequest> requests(kBatch);
    for (int k = 0; k < kBatch; ++k) {
      requests[k] = {good, rounds[k].features, rounds[k].reserve};
    }
    requests[2].handle = ProductHandle{good.index, good.generation + 2};
    return requests;
  };

  std::vector<Quote> wire_quotes(kBatch), local_quotes(kBatch);
  Status wire_status = client.PostPrices(build(handle_a), wire_quotes);
  Status local_status = broker_b.PostPrices(build(handle_b), local_quotes);
  EXPECT_EQ(wire_status.code(), local_status.code());
  EXPECT_EQ(wire_status.code(), StatusCode::kNotFound);
  for (int k = 0; k < kBatch; ++k) {
    EXPECT_EQ(wire_quotes[k].status, local_quotes[k].status) << "item " << k;
    EXPECT_EQ(wire_quotes[k].ticket, local_quotes[k].ticket) << "item " << k;
    EXPECT_EQ(wire_quotes[k].price, local_quotes[k].price) << "item " << k;
  }

  // Batched feedback with one duplicate: per-item codes must match too.
  std::vector<FeedbackRequest> feedback;
  for (int k = 0; k < kBatch; ++k) {
    if (wire_quotes[k].ticket != 0) feedback.push_back({wire_quotes[k].ticket, true});
  }
  feedback.push_back(feedback.front());  // duplicate → NotFound at that slot
  std::vector<StatusCode> wire_codes(feedback.size()), local_codes(feedback.size());
  wire_status = client.Observes(feedback, wire_codes);
  local_status = broker_b.Observes(feedback, local_codes);
  EXPECT_EQ(wire_status.code(), local_status.code());
  for (size_t k = 0; k < feedback.size(); ++k) {
    EXPECT_EQ(wire_codes[k], local_codes[k]) << "item " << k;
  }
  server.Stop();

  EXPECT_EQ(SnapshotBytes(broker_a, spec.name), SnapshotBytes(broker_b, spec.name));
}

// --------------------------------------------------- malformed traffic

TEST(TcpServer, UnknownOpcodeGetsErrorResponseAndConnectionSurvives) {
  Broker broker;
  TcpServer server(&broker);
  ASSERT_TRUE(server.Start().ok());

  UniqueFd fd;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server.port(), &fd).ok());
  std::string bytes;
  WireWriter w(&bytes);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(static_cast<Opcode>(200), 7);
  w.EndFrame(frame);
  ASSERT_EQ(::send(fd.get(), bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));

  // Expect a kInvalidArgument error response (id echoed), then liveness.
  std::string in;
  char chunk[512];
  std::string_view payload;
  size_t next = 0;
  for (;;) {
    if (NextFrame(in, 0, &payload, &next) == FrameResult::kFrame) break;
    ssize_t n = ::recv(fd.get(), chunk, sizeof chunk, 0);
    ASSERT_GT(n, 0);
    in.append(chunk, static_cast<size_t>(n));
  }
  WireReader r(payload);
  uint8_t op, code;
  uint64_t id;
  ASSERT_TRUE(r.GetU8(&op) && r.GetU64(&id) && r.GetU8(&code));
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(StatusCodeFromWire(code), StatusCode::kInvalidArgument);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0);  // decodable header → answered, not dropped
  server.Stop();
}

TEST(TcpServer, FramingViolationsDropTheConnection) {
  Broker broker;
  TcpServer server(&broker);
  ASSERT_TRUE(server.Start().ok());

  struct Violation {
    const char* what;
    std::string bytes;
  };
  std::string oversized;
  {
    WireWriter w(&oversized);
    w.PutU32(static_cast<uint32_t>(kMaxFramePayloadBytes + 1));
  }
  std::string short_header;
  {
    WireWriter w(&short_header);
    size_t frame = w.BeginFrame();
    w.PutU8(1);  // 1-byte payload: too short for opcode+id
    w.EndFrame(frame);
  }
  const Violation kViolations[] = {{"oversized length prefix", oversized},
                                   {"payload shorter than header", short_header}};
  int64_t errors_before = server.stats().protocol_errors;
  for (const Violation& violation : kViolations) {
    SCOPED_TRACE(violation.what);
    UniqueFd fd;
    ASSERT_TRUE(ConnectTcp("127.0.0.1", server.port(), &fd).ok());
    ASSERT_EQ(::send(fd.get(), violation.bytes.data(), violation.bytes.size(), 0),
              static_cast<ssize_t>(violation.bytes.size()));
    // The server sends a final connection-level error frame (opcode 0,
    // id 0, InvalidArgument — DESIGN.md §14) and then closes on us.
    std::string in;
    char chunk[512];
    std::string_view payload;
    size_t next = 0;
    for (;;) {
      if (NextFrame(in, 0, &payload, &next) == FrameResult::kFrame) break;
      ssize_t n = ::recv(fd.get(), chunk, sizeof chunk, 0);
      ASSERT_GT(n, 0);
      in.append(chunk, static_cast<size_t>(n));
    }
    WireReader r(payload);
    uint8_t op, code;
    uint64_t id;
    ASSERT_TRUE(r.GetU8(&op) && r.GetU64(&id) && r.GetU8(&code));
    EXPECT_EQ(op, 0u);
    EXPECT_EQ(id, 0u);
    EXPECT_EQ(StatusCodeFromWire(code), StatusCode::kInvalidArgument);
    // ...then EOF: the connection is still dropped, just not silently.
    in.erase(0, next);
    ssize_t n;
    while ((n = ::recv(fd.get(), chunk, sizeof chunk, 0)) > 0) {
    }
    EXPECT_EQ(n, 0);
  }
  EXPECT_EQ(server.stats().protocol_errors, errors_before + 2);
  server.Stop();
}

// ------------------------------------------------- concurrency (TSan)

// Several clients over real sockets against one server, each hammering its
// own product, with Stop() racing the tail of the traffic — the TSan
// target for the server event loop and its stats counters.
TEST(TcpServer, ConcurrentClientsServeCleanly) {
  constexpr int kClients = 4;
  constexpr int kRounds = 150;
  StreamFactory factory;
  Broker broker;
  std::vector<ScenarioSpec> specs;
  for (int c = 0; c < kClients; ++c) {
    specs.push_back(LinearSpec("wire/mt/" + std::to_string(c), 4, 2000,
                               c % 2 == 0 ? "pure" : "reserve", 60 + c));
    OpenSpec(&broker, &factory, specs.back());
  }
  TcpServer server(&broker);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::vector<MarketRound>> rings(kClients);
  for (int c = 0; c < kClients; ++c) {
    Rng rng(specs[c].sim_seed);
    std::unique_ptr<QueryStream> stream = factory.CreateStream(specs[c], &rng);
    rings[c].resize(64);
    for (MarketRound& round : rings[c]) stream->Next(&rng, &round);
  }

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      ProductHandle handle;
      if (!client.Resolve(specs[c].name, &handle).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int t = 0; t < kRounds; ++t) {
        const MarketRound& round = rings[c][t % rings[c].size()];
        Quote quote;
        if (!client.PostPrice(handle, round.features, round.reserve, &quote).ok() ||
            !client.Observe(quote.ticket, quote.price <= round.value).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_GE(stats.frames_served, int64_t{kClients} * (1 + 2 * kRounds));
  server.Stop();

  for (int c = 0; c < kClients; ++c) {
    broker::SessionInfo info;
    ASSERT_TRUE(broker.GetSessionInfo(specs[c].name, &info).ok());
    EXPECT_EQ(info.pending, 0) << specs[c].name;
    EXPECT_EQ(info.quotes_issued, kRounds) << specs[c].name;
  }
}

// --------------------------------------------------------- observability

// Blocking loopback HTTP GET against the scrape listener; returns the whole
// response (headers + body). The scrape endpoint speaks HTTP/1.0 with
// Connection: close, so EOF delimits the document.
std::string HttpGet(uint16_t port) {
  UniqueFd fd;
  PDM_CHECK(ConnectTcp("127.0.0.1", port, &fd).ok());
  const char request[] = "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n";
  PDM_CHECK(::send(fd.get(), request, sizeof(request) - 1, 0) ==
            static_cast<ssize_t>(sizeof(request) - 1));
  std::string response;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd.get(), chunk, sizeof chunk, 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  return response;
}

/// The numeric value of the unlabeled series `name` in an exposition
/// document, or -1 when absent.
double SeriesValue(const std::string& text, const std::string& name) {
  std::string needle = "\n" + name + " ";
  size_t at = text.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

TEST(TcpServer, GetMetricsOpcodeRoundTrip) {
  // One registry behind the broker AND the server: the dump fetched over
  // the wire carries both layers' instruments, and the broker counters
  // reconcile exactly with what this client did.
  StreamFactory factory;
  metrics::MetricRegistry registry;
  broker::BrokerConfig broker_config;
  broker_config.metrics = &registry;
  Broker broker(broker_config);
  ScenarioSpec spec = LinearSpec("wire/getmetrics", 5, 2000, "reserve", 71);
  OpenSpec(&broker, &factory, spec);

  ServerConfig config;
  config.metrics = &registry;
  TcpServer server(&broker, config);
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ProductHandle handle;
  ASSERT_TRUE(client.Resolve(spec.name, &handle).ok());

  constexpr int kRounds = 50;
  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
  stream->BindEngine(broker.FindEngine(spec.name));
  MarketRound round;
  Quote quote;
  uint64_t accepts = 0;
  for (int t = 0; t < kRounds; ++t) {
    stream->Next(&rng, &round);
    ASSERT_TRUE(client.PostPrice(handle, round.features, round.reserve, &quote).ok());
    bool accepted = !quote.certain_no_sale && quote.price <= round.value;
    accepts += accepted ? 1 : 0;
    ASSERT_TRUE(client.Observe(quote.ticket, accepted).ok());
  }

  metrics::MetricsDump dump;
  ASSERT_TRUE(client.GetMetrics(&dump).ok());
  EXPECT_EQ(dump.CounterValue("pdm_broker_quotes_total"),
            static_cast<uint64_t>(kRounds));
  EXPECT_EQ(dump.CounterValue("pdm_broker_accepts_total"), accepts);
  EXPECT_EQ(dump.CounterValue("pdm_broker_rejects_total"), kRounds - accepts);
  const metrics::DumpInstrument* resident =
      dump.Find("pdm_broker_resident_sessions");
  ASSERT_NE(resident, nullptr);
  EXPECT_DOUBLE_EQ(resident->gauge, 1.0);

  // Server-side instruments ride in the same dump, labeled by opcode. The
  // GetMetrics frame itself was counted before the dump was encoded.
  const metrics::DumpInstrument* posts =
      dump.Find("pdm_server_frames_total", "opcode", "post_price");
  ASSERT_NE(posts, nullptr);
  EXPECT_EQ(posts->counter, static_cast<uint64_t>(kRounds));
  const metrics::DumpInstrument* gets =
      dump.Find("pdm_server_frames_total", "opcode", "get_metrics");
  ASSERT_NE(gets, nullptr);
  EXPECT_EQ(gets->counter, 1u);
  const metrics::DumpInstrument* latency = dump.Find("pdm_server_request_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->hist_count, 0);
  server.Stop();
}

TEST(TcpServer, HttpScrapeDuringLoadReconcilesWithClientTally) {
  // The Prometheus endpoint on the second listen port, scraped WHILE wire
  // traffic is in flight on the first: mid-load scrapes must parse and stay
  // monotone, and the post-load scrape must agree exactly with the
  // client-side tally — the same reconciliation CI's check_metrics.py does.
  StreamFactory factory;
  metrics::MetricRegistry registry;
  broker::BrokerConfig broker_config;
  broker_config.metrics = &registry;
  Broker broker(broker_config);
  ScenarioSpec spec = LinearSpec("wire/scrape", 5, 4000, "reserve+uncertainty", 83);
  OpenSpec(&broker, &factory, spec);

  ServerConfig config;
  config.metrics = &registry;
  config.metrics_port = 0;  // ephemeral
  TcpServer server(&broker, config);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.metrics_port(), 0);

  constexpr int kRounds = 400;
  std::atomic<uint64_t> tally_accepts{0};
  std::atomic<bool> load_done{false};
  std::thread load([&] {
    // Signal completion on every exit path so the scrape loop terminates
    // even if an assertion bails out of the lambda early.
    struct DoneGuard {
      std::atomic<bool>* flag;
      ~DoneGuard() { flag->store(true, std::memory_order_release); }
    } guard{&load_done};
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ProductHandle handle;
    ASSERT_TRUE(client.Resolve(spec.name, &handle).ok());
    Rng rng(spec.sim_seed);
    std::unique_ptr<QueryStream> stream = factory.CreateStream(spec, &rng);
    stream->BindEngine(broker.FindEngine(spec.name));
    MarketRound round;
    Quote quote;
    uint64_t accepts = 0;
    for (int t = 0; t < kRounds; ++t) {
      stream->Next(&rng, &round);
      ASSERT_TRUE(
          client.PostPrice(handle, round.features, round.reserve, &quote).ok());
      bool accepted = !quote.certain_no_sale && quote.price <= round.value;
      accepts += accepted ? 1 : 0;
      ASSERT_TRUE(client.Observe(quote.ticket, accepted).ok());
    }
    tally_accepts.store(accepts, std::memory_order_release);
  });

  // Concurrent scrapes: every document parses, quotes_total is monotone.
  // At least one scrape happens even if the load outruns this loop.
  double last_quotes = 0.0;
  int scrapes = 0;
  do {
    std::string response = HttpGet(server.metrics_port());
    ASSERT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    ASSERT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
    double quotes = SeriesValue(response, "pdm_broker_quotes_total");
    ASSERT_GE(quotes, last_quotes);
    last_quotes = quotes;
    ++scrapes;
  } while (!load_done.load(std::memory_order_acquire));
  load.join();
  EXPECT_GT(scrapes, 0);

  // Quiesced: the scrape agrees exactly with what the client measured.
  std::string response = HttpGet(server.metrics_port());
  EXPECT_EQ(SeriesValue(response, "pdm_broker_quotes_total"), kRounds);
  EXPECT_EQ(SeriesValue(response, "pdm_broker_accepts_total"),
            static_cast<double>(tally_accepts.load()));
  EXPECT_EQ(SeriesValue(response, "pdm_broker_rejects_total"),
            static_cast<double>(kRounds - tally_accepts.load()));
  // The gauge counts the scrape connection rendering this very document (and
  // possibly the not-yet-reaped wire client): live, small, never negative.
  EXPECT_GE(SeriesValue(response, "pdm_server_active_connections"), 1.0);
  EXPECT_LE(SeriesValue(response, "pdm_server_active_connections"), 2.0);

  // Scrape connections are not wire connections: exactly one client counted.
  metrics::MetricsDump dump;
  ASSERT_TRUE(
      metrics::DecodeMetricsDump(registry.EncodeDump(), &dump).ok());
  EXPECT_EQ(dump.CounterValue("pdm_server_connections_total"), 1u);
  server.Stop();
}

// ------------------------------------------------------ graceful drain

TEST(TcpServer, StopDrainsBufferedRequestsBeforeClosing) {
  Broker broker;
  TcpServer server(&broker);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  constexpr int kPings = 100;
  for (int i = 0; i < kPings; ++i) client.QueuePing();
  ASSERT_TRUE(client.Flush().ok());

  // Wait until the server has *served* the frames (responses queued or
  // flushed), then stop. Drain must deliver every response.
  for (int spin = 0; spin < 2000 && server.stats().frames_served < kPings; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().frames_served, kPings);
  server.Stop();
  EXPECT_FALSE(server.running());

  for (int i = 0; i < kPings; ++i) {
    Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp).ok()) << "response " << i;
    EXPECT_TRUE(resp.status.ok());
  }
  // After the drain the connection is closed server-side.
  Response resp;
  EXPECT_FALSE(client.ReadResponse(&resp).ok());

  // Stop is idempotent, and a stopped server can be probed safely.
  server.Stop();
}

}  // namespace
}  // namespace pdm::server
