#include <gtest/gtest.h>

#include <cmath>

#include "market/linear_market.h"
#include "market/simulator.h"
#include "pricing/baselines.h"
#include "pricing/ellipsoid_engine.h"

namespace pdm {
namespace {

NoisyLinearMarketConfig SmallMarket(int dim) {
  NoisyLinearMarketConfig config;
  config.feature_dim = dim;
  config.num_owners = 200;
  return config;
}

EllipsoidEngineConfig EngineFor(int dim, int64_t horizon, bool use_reserve, double delta) {
  EllipsoidEngineConfig config;
  config.dim = dim;
  config.horizon = horizon;
  config.initial_radius = 2.0 * std::sqrt(static_cast<double>(dim));
  config.use_reserve = use_reserve;
  config.delta = delta;
  return config;
}

TEST(Simulator, RunsAndCountsRounds) {
  Rng rng(1);
  NoisyLinearQueryStream stream(SmallMarket(5), &rng);
  EllipsoidPricingEngine engine(EngineFor(5, 500, true, 0.0));
  SimulationOptions options;
  options.rounds = 500;
  SimulationResult result = RunMarket(&stream, &engine, options, &rng);
  EXPECT_EQ(result.tracker.rounds(), 500);
  EXPECT_EQ(result.engine_counters.rounds, 500);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Simulator, RegretRatioFallsOverTime) {
  Rng rng(2);
  NoisyLinearQueryStream stream(SmallMarket(5), &rng);
  EllipsoidPricingEngine engine(EngineFor(5, 4000, true, 0.0));
  SimulationOptions options;
  options.rounds = 4000;
  options.series_stride = 500;
  SimulationResult result = RunMarket(&stream, &engine, options, &rng);
  const auto& series = result.tracker.series();
  ASSERT_GE(series.size(), 4u);
  // The ratio at the end is well below the ratio after the first block.
  EXPECT_LT(series.back().regret_ratio, 0.8 * series.front().regret_ratio);
}

TEST(Simulator, EllipsoidEngineBeatsRiskAverseBaseline) {
  // At n = 5 the engine converges well within the horizon, so its cumulative
  // ratio must beat the risk-averse baseline's on the same round sequence —
  // the Fig. 5(a) comparison at small scale.
  int64_t rounds = 8000;
  Rng stream_rng(3);
  NoisyLinearQueryStream stream(SmallMarket(5), &stream_rng);
  EllipsoidPricingEngine engine(EngineFor(5, rounds, true, 0.0));
  SimulationOptions options;
  options.rounds = rounds;
  Rng sim_rng(4);
  SimulationResult result = RunMarket(&stream, &engine, options, &sim_rng);
  EXPECT_LT(result.tracker.regret_ratio(), result.tracker.baseline_regret_ratio());
}

TEST(Simulator, SkippedRoundsProduceNoSale) {
  // A stream whose reserve always exceeds any possible value: the engine
  // skips every round and revenue stays zero.
  class ImpossibleReserveStream : public QueryStream {
   public:
    using QueryStream::Next;
    void Next(Rng* rng, MarketRound* round) override {
      (void)rng;
      round->features = {1.0, 0.0};
      round->reserve = 1000.0;
      round->value = 1.0;
    }
  };
  ImpossibleReserveStream stream;
  EllipsoidEngineConfig config = EngineFor(2, 100, true, 0.0);
  config.initial_radius = 1.0;
  EllipsoidPricingEngine engine(config);
  SimulationOptions options;
  options.rounds = 100;
  Rng rng(5);
  SimulationResult result = RunMarket(&stream, &engine, options, &rng);
  EXPECT_EQ(result.engine_counters.skipped_rounds, 100);
  EXPECT_EQ(result.tracker.sales(), 0);
  EXPECT_DOUBLE_EQ(result.tracker.cumulative_revenue(), 0.0);
  // q > v in every round ⇒ zero regret by Eq. (1).
  EXPECT_DOUBLE_EQ(result.tracker.cumulative_regret(), 0.0);
}

TEST(Simulator, LatencyMeasurementPopulated) {
  Rng rng(6);
  NoisyLinearQueryStream stream(SmallMarket(5), &rng);
  EllipsoidPricingEngine engine(EngineFor(5, 200, true, 0.0));
  SimulationOptions options;
  options.rounds = 200;
  options.measure_latency = true;
  SimulationResult result = RunMarket(&stream, &engine, options, &rng);
  EXPECT_GT(result.engine_millis_per_round, 0.0);
  EXPECT_LT(result.engine_millis_per_round, 10.0);
}

TEST(Simulator, DeterministicGivenSeed) {
  // Identical seeds must reproduce every accumulator bit-for-bit — the
  // property all recorded bench numbers rely on.
  auto run = [] {
    Rng rng(12345);
    NoisyLinearMarketConfig market_config;
    market_config.feature_dim = 8;
    market_config.num_owners = 150;
    NoisyLinearQueryStream stream(market_config, &rng);
    EllipsoidEngineConfig engine_config;
    engine_config.dim = 8;
    engine_config.horizon = 1500;
    engine_config.initial_radius = stream.RecommendedRadius();
    EllipsoidPricingEngine engine(engine_config);
    SimulationOptions options;
    options.rounds = 1500;
    return RunMarket(&stream, &engine, options, &rng);
  };
  SimulationResult a = run();
  SimulationResult b = run();
  EXPECT_EQ(a.tracker.cumulative_regret(), b.tracker.cumulative_regret());
  EXPECT_EQ(a.tracker.cumulative_revenue(), b.tracker.cumulative_revenue());
  EXPECT_EQ(a.tracker.sales(), b.tracker.sales());
  EXPECT_EQ(a.engine_counters.exploratory_rounds, b.engine_counters.exploratory_rounds);
  EXPECT_EQ(a.engine_counters.cuts_applied, b.engine_counters.cuts_applied);
}

TEST(Simulator, BrokerUtilityNonNegativeWithReserve) {
  // The reserve constraint's raison d'être (Section II-A): every sale covers
  // the total privacy compensation, so per-round broker utility p − q ≥ 0.
  class UtilityCheckingStream : public QueryStream {
   public:
    explicit UtilityCheckingStream(NoisyLinearQueryStream* inner) : inner_(inner) {}
    using QueryStream::Next;
    void Next(Rng* rng, MarketRound* round) override {
      inner_->Next(rng, round);
      last_ = *round;
    }
    MarketRound last_;
    NoisyLinearQueryStream* inner_;
  };
  Rng rng(6);
  NoisyLinearMarketConfig market_config;
  market_config.feature_dim = 6;
  market_config.num_owners = 100;
  NoisyLinearQueryStream inner(market_config, &rng);
  EllipsoidEngineConfig engine_config;
  engine_config.dim = 6;
  engine_config.horizon = 2000;
  engine_config.initial_radius = inner.RecommendedRadius();
  engine_config.use_reserve = true;
  EllipsoidPricingEngine engine(engine_config);
  for (int t = 0; t < 2000; ++t) {
    MarketRound round = inner.Next(&rng);
    PostedPrice posted = engine.PostPrice(round.features, round.reserve);
    bool accepted = !posted.certain_no_sale && posted.price <= round.value;
    engine.Observe(accepted);
    if (accepted) {
      ASSERT_GE(posted.price - round.reserve, -1e-12) << "round " << t;
    }
  }
}

TEST(Simulator, FourPaperVariantsAllConverge) {
  // Smoke test of the 2×2 variant grid at small scale: every variant ends
  // with a sane regret ratio.
  int64_t rounds = 3000;
  for (bool use_reserve : {false, true}) {
    for (double delta : {0.0, 0.01}) {
      Rng rng(7);
      NoisyLinearMarketConfig market_config = SmallMarket(5);
      market_config.value_noise_sigma =
          delta > 0.0 ? SigmaForBuffer(delta, 2.0, rounds) : 0.0;
      NoisyLinearQueryStream stream(market_config, &rng);
      EllipsoidPricingEngine engine(EngineFor(5, rounds, use_reserve, delta));
      SimulationOptions options;
      options.rounds = rounds;
      SimulationResult result = RunMarket(&stream, &engine, options, &rng);
      EXPECT_GT(result.tracker.regret_ratio(), 0.0);
      EXPECT_LT(result.tracker.regret_ratio(), 0.5)
          << "reserve=" << use_reserve << " delta=" << delta;
    }
  }
}

}  // namespace
}  // namespace pdm
