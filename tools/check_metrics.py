#!/usr/bin/env python3
"""Reconcile a pdm_serve metrics scrape against a loadgen serving JSON.

Usage:
    check_metrics.py SCRAPE SERVING_JSON

SCRAPE is a Prometheus text exposition document — a file path, "-" for
stdin, or an http:// URL (the live pdm_serve scrape endpoint). SERVING_JSON
is a pdm.bench_serving.v1 document written by `loadgen --out=...`.

The loadgen tallies, client side, every OK PostPrice response (quotes) and
every OK Observe response by its accept flag (accepts/rejects). The broker
counts the same events server side into pdm_broker_{quotes,accepts,rejects}
_total. With the loadgen as the server's only client, the two tallies must
agree EXACTLY — a counter lost to a dropped metric wire-up, a double count
in a coalesced batch path, or a scrape rendered mid-teardown all surface
here as an integer mismatch, which is the point of the gate.

Checks (exit 1 on any failure):

  * quotes/accepts/rejects: scrape counter == sum of the serving JSON's
    per-series client tallies (exact integer equality).
  * accepts + rejects == quotes within the scrape itself (every issued
    ticket was retired by feedback; nothing leaked).
  * pdm_server_protocol_errors_total == 0.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys
import urllib.request

COUNTERS = {
    "pdm_broker_quotes_total": "quotes",
    "pdm_broker_accepts_total": "accepts",
    "pdm_broker_rejects_total": "rejects",
}


def read_scrape(source):
    if source == "-":
        return sys.stdin.read()
    if source.startswith("http://") or source.startswith("https://"):
        try:
            with urllib.request.urlopen(source, timeout=30) as response:
                return response.read().decode("utf-8")
        except OSError as err:
            sys.exit(f"check_metrics: cannot fetch {source}: {err}")
    try:
        with open(source, "r", encoding="utf-8") as fp:
            return fp.read()
    except OSError as err:
        sys.exit(f"check_metrics: cannot read {source}: {err}")


def scrape_counter(text, name):
    """The value of the unlabeled series `name`, or None when absent."""
    for line in text.splitlines():
        if line.startswith(name + " "):
            token = line[len(name) + 1 :].split()[0]
            try:
                return int(float(token))
            except ValueError:
                sys.exit(f"check_metrics: bad value for {name}: {token!r}")
    return None


def load_serving(path):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_metrics: cannot read {path}: {err}")
    if doc.get("schema") != "pdm.bench_serving.v1":
        sys.exit(
            f"check_metrics: {path} has schema {doc.get('schema')!r}, "
            "expected 'pdm.bench_serving.v1'"
        )
    series = doc.get("series", [])
    if not series:
        sys.exit(f"check_metrics: {path} contains no series rows")
    return series


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scrape", help="exposition file, '-' for stdin, or URL")
    parser.add_argument("serving_json", help="pdm.bench_serving.v1 document")
    args = parser.parse_args()

    text = read_scrape(args.scrape)
    series = load_serving(args.serving_json)

    # Client-side tallies, summed across series rows. Rows missing the
    # fields fail loudly: an old loadgen binary cannot arm this gate.
    tallies = {}
    for field in COUNTERS.values():
        total = 0
        for row in series:
            value = row.get(field)
            if value is None:
                sys.exit(
                    f"check_metrics: series {row.get('series')!r} in "
                    f"{args.serving_json} has no {field!r} tally — loadgen "
                    "predates the metrics subsystem; rebuild it"
                )
            total += value
        tallies[field] = total

    failures = []
    scraped = {}
    for counter, field in COUNTERS.items():
        value = scrape_counter(text, counter)
        if value is None:
            failures.append(
                f"  {counter}: missing from the scrape — the server was not "
                "wired to the broker's registry"
            )
            continue
        scraped[field] = value
        if value != tallies[field]:
            failures.append(
                f"  {counter}: scrape says {value}, client tallied "
                f"{tallies[field]} ({field}) — exact reconciliation failed"
            )

    if len(scraped) == len(COUNTERS):
        if scraped["accepts"] + scraped["rejects"] != scraped["quotes"]:
            failures.append(
                f"  accepts ({scraped['accepts']}) + rejects "
                f"({scraped['rejects']}) != quotes ({scraped['quotes']}) — "
                "issued tickets leaked without feedback"
            )

    errors = scrape_counter(text, "pdm_server_protocol_errors_total")
    if errors is None:
        failures.append("  pdm_server_protocol_errors_total: missing from the scrape")
    elif errors != 0:
        failures.append(
            f"  pdm_server_protocol_errors_total: {errors} protocol errors "
            "during the load run"
        )

    if failures:
        print(
            f"FAIL: {len(failures)} metrics reconciliation failure(s) "
            f"({args.scrape} vs {args.serving_json}):"
        )
        print("\n".join(failures))
        return 1
    print(
        f"OK: scrape reconciles with client tallies exactly "
        f"(quotes={tallies['quotes']}, accepts={tallies['accepts']}, "
        f"rejects={tallies['rejects']}; 0 protocol errors)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
