#!/usr/bin/env python3
"""Assert crash-consistent spill recovery across a pdm_serve kill -9 drill.

The CI chaos job runs this in three steps around a hard server kill:

    check_recovery.py snapshot SPILL_DIR --out manifest.json
        # ... kill -9 pdm_serve; restart it on the same --spill_dir ...
    check_recovery.py verify-files manifest.json SPILL_DIR
    check_recovery.py verify-scrape manifest.json SCRAPE --serve-log serve2.log

`snapshot` fingerprints every durable spill (*.snap) the killed server left
behind: size and SHA-256 per file. A drill that spilled nothing proves
nothing, so an empty directory is a hard failure, not a quiet pass.

`verify-files` runs after the restart and asserts every fingerprinted spill
still exists in the directory *byte-for-byte*. Comparison is by content
hash, not filename: adopting a spill into the restarted broker's slot table
may rename `slot-N.snap` to a new index, which is fine — losing or altering
the bytes is not. New spills written by the restarted server are ignored.

`verify-scrape` closes the loop on the restarted server's own accounting:
the RECOVERY handshake line in its log must report exactly one adoption per
fingerprinted spill (none dropped, none double-counted), and the metrics
scrape must show zero spill corruptions — recovery that quarantined a file
is data loss, and the drill must say so.

Stdlib only; no third-party dependencies. Prints "OK: ..." and exits 0, or
"FAIL: ..." and exits 1 (CI treats this as the drill's verdict).
"""

import argparse
import hashlib
import json
import pathlib
import re
import sys
import urllib.request

MANIFEST_SCHEMA = "pdm.spill_manifest.v1"


def fail(message):
    print(f"FAIL: {message}")
    return 1


def hash_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as fp:
        for chunk in iter(lambda: fp.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def spill_files(directory):
    """Durable spills only: *.snap, not *.tmp halves or *.quarantined."""
    return sorted(p for p in pathlib.Path(directory).glob("*.snap") if p.is_file())


def load_manifest(path):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_recovery: cannot read {path}: {err}")
    if doc.get("schema") != MANIFEST_SCHEMA:
        sys.exit(
            f"check_recovery: {path} has schema {doc.get('schema')!r}, "
            f"expected {MANIFEST_SCHEMA!r}"
        )
    if not doc.get("files"):
        sys.exit(f"check_recovery: {path} fingerprints no spills")
    return doc


def read_scrape(source):
    if source == "-":
        return sys.stdin.read()
    if source.startswith("http://") or source.startswith("https://"):
        try:
            with urllib.request.urlopen(source, timeout=30) as response:
                return response.read().decode("utf-8")
        except OSError as err:
            sys.exit(f"check_recovery: cannot fetch {source}: {err}")
    try:
        with open(source, "r", encoding="utf-8") as fp:
            return fp.read()
    except OSError as err:
        sys.exit(f"check_recovery: cannot read {source}: {err}")


def scrape_counter(text, name):
    for line in text.splitlines():
        if line.startswith(name + " "):
            token = line[len(name) + 1 :].split()[0]
            try:
                return int(float(token))
            except ValueError:
                sys.exit(f"check_recovery: bad value for {name}: {token!r}")
    return None


def cmd_snapshot(args):
    directory = pathlib.Path(args.spill_dir)
    if not directory.is_dir():
        return fail(f"{directory} is not a directory — did pdm_serve spill at all?")
    files = spill_files(directory)
    if not files:
        return fail(
            f"{directory} holds no *.snap spills — a drill with nothing "
            "durable to recover proves nothing (lower --max_resident or "
            "drive more products)"
        )
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "spill_dir": str(directory),
        "files": [
            {"name": p.name, "bytes": p.stat().st_size, "sha256": hash_file(p)}
            for p in files
        ],
    }
    with open(args.out, "w", encoding="utf-8") as fp:
        json.dump(manifest, fp, indent=2)
        fp.write("\n")
    print(f"OK: fingerprinted {len(files)} spill(s) from {directory} into {args.out}")
    return 0


def cmd_verify_files(args):
    manifest = load_manifest(args.manifest)
    directory = pathlib.Path(args.spill_dir)
    if not directory.is_dir():
        return fail(f"{directory} is not a directory")
    # Content-addressed: adoption may have renamed slot files, so compare
    # the set of surviving byte-streams, not the filenames.
    survivors = {}
    for path in spill_files(directory):
        survivors.setdefault(hash_file(path), []).append(path.name)

    failures = []
    for entry in manifest["files"]:
        names = survivors.get(entry["sha256"])
        if not names:
            failures.append(
                f"  {entry['name']} ({entry['bytes']} bytes, sha256 "
                f"{entry['sha256'][:12]}...): no byte-identical spill survived "
                "the restart — recovery lost or altered it"
            )
    quarantined = sorted(
        p.name for p in directory.glob("*.quarantined") if p.is_file()
    )
    if quarantined:
        failures.append(
            f"  quarantined spill(s) after restart: {', '.join(quarantined)} — "
            "the durable write path tore a file"
        )
    if failures:
        print(
            f"FAIL: {len(failures)} spill durability failure(s) "
            f"({args.manifest} vs {directory}):"
        )
        print("\n".join(failures))
        return 1
    print(
        f"OK: all {len(manifest['files'])} pre-kill spill(s) survived the "
        "restart byte-for-byte (0 quarantined)"
    )
    return 0


def cmd_verify_scrape(args):
    manifest = load_manifest(args.manifest)
    expected = len(manifest["files"])
    failures = []

    if args.serve_log:
        try:
            with open(args.serve_log, "r", encoding="utf-8") as fp:
                log = fp.read()
        except OSError as err:
            sys.exit(f"check_recovery: cannot read {args.serve_log}: {err}")
        match = re.search(
            r"^RECOVERY adopted=(\d+) tmp=(\d+) corrupt=(\d+) orphans=(\d+)",
            log,
            re.MULTILINE,
        )
        if not match:
            failures.append(
                f"  {args.serve_log}: no RECOVERY handshake line — the server "
                "predates the recovery sweep; rebuild it"
            )
        else:
            adopted, _tmp, corrupt, _orphans = map(int, match.groups())
            if adopted != expected:
                failures.append(
                    f"  RECOVERY adopted={adopted}, but the manifest "
                    f"fingerprints {expected} spill(s) — the restarted fleet "
                    "did not reclaim every durable session"
                )
            if corrupt != 0:
                failures.append(
                    f"  RECOVERY corrupt={corrupt} — the sweep quarantined "
                    "spill(s) the kill should have left intact"
                )

    text = read_scrape(args.scrape)
    corruptions = scrape_counter(text, "pdm_broker_spill_corruptions_total")
    if corruptions is None:
        failures.append(
            "  pdm_broker_spill_corruptions_total: missing from the scrape"
        )
    elif corruptions != 0:
        failures.append(
            f"  pdm_broker_spill_corruptions_total: {corruptions} corruption(s) "
            "detected while serving recovered sessions"
        )

    if failures:
        print(f"FAIL: {len(failures)} recovery accounting failure(s):")
        print("\n".join(failures))
        return 1
    print(
        f"OK: restarted server adopted all {expected} spill(s) with zero "
        "corruptions"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    snap = sub.add_parser("snapshot", help="fingerprint a spill directory")
    snap.add_argument("spill_dir", help="pdm_serve --spill_dir directory")
    snap.add_argument("--out", required=True, help="manifest JSON output path")
    snap.set_defaults(func=cmd_snapshot)

    files = sub.add_parser(
        "verify-files", help="assert fingerprinted spills survived byte-for-byte"
    )
    files.add_argument("manifest", help="manifest written by `snapshot`")
    files.add_argument("spill_dir", help="the same directory, after restart")
    files.set_defaults(func=cmd_verify_files)

    scrape = sub.add_parser(
        "verify-scrape", help="assert the restarted server's recovery accounting"
    )
    scrape.add_argument("manifest", help="manifest written by `snapshot`")
    scrape.add_argument("scrape", help="exposition file, '-' for stdin, or URL")
    scrape.add_argument(
        "--serve-log",
        default="",
        help="restarted pdm_serve stdout (checks the RECOVERY handshake line)",
    )
    scrape.set_defaults(func=cmd_verify_scrape)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
