#!/usr/bin/env python3
"""Tolerance-based comparison of two pdm.bench_broker.v2 documents.

Usage:
    compare_broker_scaling.py BASELINE CURRENT [--tolerance=0.25]
                              [--metric=aggregate_rounds_per_sec]

Joins the two documents on each series row's "series" key and fails (exit 1)
when CURRENT's metric falls more than TOLERANCE below BASELINE's for any
series, naming every regressed series with both rates and the shortfall.
Improvements never fail, but the series-name sets must match exactly: a
series present in only one document fails in either direction — silently
dropped (a harness regression) and silently added (an unadopted sweep cell
the gate would never arm) alike. Refresh the committed baseline whenever the
sweep grid legitimately changes.

Benchmark rates are hardware-dependent, so absolute comparison is only
meaningful between documents produced on the same machine class. The v2
document records `hardware_concurrency`; when baseline and current disagree
on it, the script prints a prominent notice and exits 0 without comparing
(pass --ignore-hardware-mismatch to force the comparison anyway). To arm
the CI gate, refresh the committed baseline from a runner-produced artifact
(`BENCH_broker_scaling.ci.json`) rather than a dev-box run — see README
"Performance".

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys

SCHEMA = "pdm.bench_broker.v2"


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"compare_broker_scaling: cannot read {path}: {err}")
    if doc.get("schema") != SCHEMA:
        sys.exit(
            f"compare_broker_scaling: {path} has schema "
            f"{doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    rows = {}
    for row in doc.get("series", []):
        name = row.get("series")
        if not name:
            sys.exit(f"compare_broker_scaling: {path} has a series row without a name")
        if name in rows:
            sys.exit(f"compare_broker_scaling: {path} repeats series {name!r}")
        rows[name] = row
    if not rows:
        sys.exit(f"compare_broker_scaling: {path} contains no series rows")
    return doc, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression per series (default 0.25)",
    )
    parser.add_argument(
        "--metric",
        default="aggregate_rounds_per_sec",
        help="series field to compare (default aggregate_rounds_per_sec)",
    )
    parser.add_argument(
        "--ignore-hardware-mismatch",
        action="store_true",
        help="compare even when the documents report different "
        "hardware_concurrency (absolute rates are NOT comparable across "
        "machine classes; expect noise)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        sys.exit("compare_broker_scaling: --tolerance must be in [0, 1)")

    base_doc, baseline = load_doc(args.baseline)
    cur_doc, current = load_doc(args.current)

    base_hw = base_doc.get("hardware_concurrency")
    cur_hw = cur_doc.get("hardware_concurrency")
    if (
        base_hw is not None
        and cur_hw is not None
        and base_hw != cur_hw
        and not args.ignore_hardware_mismatch
    ):
        # The ::warning:: line is a GitHub Actions annotation: a silently
        # disarmed gate once hid a dead baseline for a whole PR cycle, so the
        # skip must be loud in the checks UI, not just in a log nobody reads.
        # ONE summary annotation per document, naming every skipped series —
        # per-series annotations drown the checks UI as gates multiply.
        skipped = ", ".join(sorted(baseline))
        print(
            "::warning title=broker scaling gate skipped::baseline "
            f"hardware_concurrency={base_hw} does not match runner {cur_hw}; "
            "the perf gate is NOT armed "
            f"({len(baseline)} series skipped: {skipped}). Refresh the "
            "committed baseline from a CI artifact (README 'Performance')."
        )
        print(
            f"SKIPPED: baseline was recorded with hardware_concurrency={base_hw}, "
            f"current has {cur_hw} — absolute rates are not comparable across "
            "machine classes, so no gate was applied.\n"
            "To arm the gate, refresh the committed baseline from a run on this "
            "machine class (e.g. commit CI's BENCH_broker_scaling.ci.json "
            "artifact as BENCH_broker_scaling.json — README 'Performance'), or "
            "pass --ignore-hardware-mismatch to force the comparison."
        )
        return 0

    failures = []
    improvements = 0
    for name in sorted(baseline):
        base_row = baseline[name]
        if name not in current:
            failures.append(f"  {name}: present in baseline but missing from current")
            continue
        base = base_row.get(args.metric)
        cur = current[name].get(args.metric)
        if base is None or cur is None:
            failures.append(f"  {name}: metric {args.metric!r} missing from a document")
            continue
        if base <= 0:
            # A non-positive baseline metric can never gate anything — it is
            # a broken baseline (truncated run, wrong field), not a slow one.
            # Skipping it silently would disarm the series forever.
            failures.append(
                f"  {name}: baseline {args.metric} is {base!r} (non-positive) — "
                "the baseline is broken; re-record it instead of comparing "
                "against it"
            )
            continue
        ratio = cur / base
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"  {name}: {args.metric} regressed {100 * (1 - ratio):.1f}% "
                f"(baseline {base:,.0f} -> current {cur:,.0f}, "
                f"tolerance {100 * args.tolerance:.0f}%)"
            )
        elif ratio > 1.0:
            improvements += 1

    # The symmetric half of the set diff: series only in CURRENT. The
    # missing-from-current direction already failed above, row by row.
    for name in sorted(set(current) - set(baseline)):
        failures.append(
            f"  {name}: present in current but missing from baseline — the "
            "series sets must match (refresh the committed baseline to adopt "
            "the new sweep cell)"
        )

    if failures:
        print(
            f"FAIL: {len(failures)} series mismatched or regressed beyond "
            f"{100 * args.tolerance:.0f}% ({args.baseline} -> {args.current}):"
        )
        print("\n".join(failures))
        print(
            "If the slowdown is expected, refresh the committed baseline "
            "(README 'Performance')."
        )
        return 1
    print(
        f"OK: {len(baseline)} series within {100 * args.tolerance:.0f}% of baseline "
        f"({improvements} improved)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
