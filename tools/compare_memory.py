#!/usr/bin/env python3
"""Tolerance-based comparison of two pdm.bench_memory.v1 documents.

Usage:
    compare_memory.py BASELINE CURRENT [--memory-tolerance=0.2]
                      [--latency-tolerance=1.0] [--min-savings=0.35]

Two kinds of gate:

  * Intra-document (always runs, even across machine classes): CURRENT must
    contain both the "packed-cold" and "dense-resident" series, and the
    packed+cold-tier steady-state bytes/product must be at least MIN_SAVINGS
    lower than the dense fully-resident layout — the DESIGN.md §12 memory
    engine's reason to exist.
  * Baseline comparison (joined on each series row's "series" key): fails
    (exit 1) when bytes_per_product rises more than MEMORY_TOLERANCE above
    baseline, a latency quantile (resolve/touch/fault-in p50/p99) rises more
    than LATENCY_TOLERANCE, the current run reported touch errors, or a
    baseline series is missing from CURRENT.

Like compare_serving.py, absolute numbers are only comparable within one
machine class: when the two documents disagree on hardware_concurrency the
baseline comparison emits a ::warning:: annotation and is skipped (pass
--ignore-hardware-mismatch to force) — the intra-document savings gate still
runs, since both of its series come from the same machine. A non-positive
baseline value for any gated metric fails loudly — a broken baseline must be
re-recorded, not silently skipped.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys

SCHEMA = "pdm.bench_memory.v1"
LATENCY_GROUPS = ("resolve_ns", "touch_ns", "fault_in_ns")
LATENCY_QUANTILES = ("p50", "p99")
PACKED_SERIES = "packed-cold"
DENSE_SERIES = "dense-resident"


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"compare_memory: cannot read {path}: {err}")
    if doc.get("schema") != SCHEMA:
        sys.exit(
            f"compare_memory: {path} has schema "
            f"{doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    rows = {}
    for row in doc.get("series", []):
        name = row.get("series")
        if not name:
            sys.exit(f"compare_memory: {path} has a series row without a name")
        if name in rows:
            sys.exit(f"compare_memory: {path} repeats series {name!r}")
        rows[name] = row
    if not rows:
        sys.exit(f"compare_memory: {path} contains no series rows")
    return doc, rows


def check_savings(rows, min_savings, path):
    """The intra-document gate: packed+cold must beat dense by min_savings."""
    failures = []
    for required in (PACKED_SERIES, DENSE_SERIES):
        if required not in rows:
            failures.append(f"  {path}: required series {required!r} is missing")
    if failures:
        return failures, None
    dense = rows[DENSE_SERIES].get("bytes_per_product")
    packed = rows[PACKED_SERIES].get("bytes_per_product")
    if dense is None or packed is None:
        return [f"  {path}: bytes_per_product missing from a series row"], None
    if dense <= 0:
        return [
            f"  {path}: dense-resident bytes_per_product is {dense!r} "
            "(non-positive) — the document is broken; re-record it"
        ], None
    savings = 1.0 - packed / dense
    if savings < min_savings:
        failures.append(
            f"  {path}: packed+cold-tier saves only {100 * savings:.1f}% "
            f"bytes/product over dense-resident (dense {dense:,.0f} -> packed "
            f"{packed:,.0f}); the gate requires >= {100 * min_savings:.0f}%"
        )
    return failures, savings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument(
        "--memory-tolerance",
        type=float,
        default=0.2,
        help="allowed fractional bytes_per_product increase per series "
        "(default 0.2)",
    )
    parser.add_argument(
        "--latency-tolerance",
        type=float,
        default=1.0,
        help="allowed fractional latency increase per quantile "
        "(default 1.0 = latency may double before failing)",
    )
    parser.add_argument(
        "--min-savings",
        type=float,
        default=0.35,
        help="required fractional bytes/product savings of packed-cold over "
        "dense-resident within CURRENT (default 0.35)",
    )
    parser.add_argument(
        "--ignore-hardware-mismatch",
        action="store_true",
        help="run the baseline comparison even when the documents report "
        "different hardware_concurrency (RSS is NOT comparable across "
        "machine classes; expect noise)",
    )
    args = parser.parse_args()
    if args.memory_tolerance < 0.0:
        sys.exit("compare_memory: --memory-tolerance must be >= 0")
    if args.latency_tolerance < 0.0:
        sys.exit("compare_memory: --latency-tolerance must be >= 0")
    if not 0.0 <= args.min_savings < 1.0:
        sys.exit("compare_memory: --min-savings must be in [0, 1)")

    base_doc, baseline = load_doc(args.baseline)
    cur_doc, current = load_doc(args.current)

    # The savings gate needs no baseline: both series of CURRENT ran on the
    # same machine minutes apart.
    failures, savings = check_savings(current, args.min_savings, args.current)

    base_hw = base_doc.get("hardware_concurrency")
    cur_hw = cur_doc.get("hardware_concurrency")
    if (
        base_hw is not None
        and cur_hw is not None
        and base_hw != cur_hw
        and not args.ignore_hardware_mismatch
    ):
        # ONE summary annotation per document, naming every skipped series —
        # per-series annotations drown the checks UI as gates multiply.
        skipped = ", ".join(sorted(baseline))
        print(
            "::warning title=memory gate partially skipped::baseline "
            f"hardware_concurrency={base_hw} does not match runner {cur_hw}; "
            "the baseline comparison is NOT armed "
            f"({len(baseline)} series skipped: {skipped}; the intra-document "
            "savings gate still ran). Refresh the committed baseline from a "
            "CI artifact (README 'Memory & scale')."
        )
        if failures:
            print(f"FAIL: {len(failures)} memory gate failure(s):")
            print("\n".join(failures))
            return 1
        print(
            f"OK (savings gate only): packed-cold saves {100 * savings:.1f}% "
            f"bytes/product (required >= {100 * args.min_savings:.0f}%). "
            f"Baseline comparison SKIPPED: hardware_concurrency {base_hw} vs "
            f"{cur_hw} — RSS is not comparable across machine classes."
        )
        return 0

    improvements = 0
    for name in sorted(baseline):
        base_row = baseline[name]
        if name not in current:
            failures.append(f"  {name}: present in baseline but missing from current")
            continue
        cur_row = current[name]

        if cur_row.get("touch_errors", 0):
            failures.append(
                f"  {name}: current run reported {cur_row['touch_errors']} "
                "touch errors"
            )

        # Memory: higher is worse.
        base = base_row.get("bytes_per_product")
        cur = cur_row.get("bytes_per_product")
        if base is None or cur is None:
            failures.append(
                f"  {name}: metric 'bytes_per_product' missing from a document"
            )
        elif base <= 0:
            failures.append(
                f"  {name}: baseline bytes_per_product is {base!r} "
                "(non-positive) — the baseline is broken; re-record it "
                "instead of comparing against it"
            )
        else:
            ratio = cur / base
            if ratio > 1.0 + args.memory_tolerance:
                failures.append(
                    f"  {name}: bytes_per_product rose {100 * (ratio - 1):.1f}% "
                    f"(baseline {base:,.0f} -> current {cur:,.0f}, tolerance "
                    f"{100 * args.memory_tolerance:.0f}%)"
                )
            elif ratio < 1.0:
                improvements += 1

        # Latency: higher is worse. fault_in_ns may legitimately be empty
        # (count 0) for the dense series — an all-zero group in BOTH
        # documents is not a gate.
        for group in LATENCY_GROUPS:
            base_lat = base_row.get(group, {})
            cur_lat = cur_row.get(group, {})
            if base_lat.get("count") == 0 and cur_lat.get("count") == 0:
                continue
            for quantile in LATENCY_QUANTILES:
                base = base_lat.get(quantile)
                cur = cur_lat.get(quantile)
                if base is None or cur is None:
                    failures.append(
                        f"  {name}: {group}.{quantile} missing from a document"
                    )
                    continue
                if base <= 0:
                    failures.append(
                        f"  {name}: baseline {group}.{quantile} is {base!r} "
                        "(non-positive) — the baseline is broken; re-record "
                        "it instead of comparing against it"
                    )
                    continue
                ratio = cur / base
                if ratio > 1.0 + args.latency_tolerance:
                    failures.append(
                        f"  {name}: {group}.{quantile} rose "
                        f"{100 * (ratio - 1):.0f}% (baseline {base / 1e3:,.1f}us "
                        f"-> current {cur / 1e3:,.1f}us, tolerance "
                        f"{100 * args.latency_tolerance:.0f}%)"
                    )
                elif ratio < 1.0:
                    improvements += 1

    new_series = sorted(set(current) - set(baseline))
    if new_series:
        print(f"note: {len(new_series)} series not in baseline: {', '.join(new_series)}")

    if failures:
        print(
            f"FAIL: {len(failures)} memory gate failure(s) "
            f"({args.baseline} -> {args.current}):"
        )
        print("\n".join(failures))
        print(
            "If the growth is expected, refresh the committed baseline "
            "(README 'Memory & scale')."
        )
        return 1
    print(
        f"OK: {len(baseline)} series within tolerance (memory "
        f"+{100 * args.memory_tolerance:.0f}%, latency "
        f"+{100 * args.latency_tolerance:.0f}%; packed-cold saves "
        f"{100 * savings:.1f}% bytes/product, required >= "
        f"{100 * args.min_savings:.0f}%; {improvements} metrics improved)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
