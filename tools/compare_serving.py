#!/usr/bin/env python3
"""Tolerance-based comparison of two pdm.bench_serving.v1 documents.

Usage:
    compare_serving.py BASELINE CURRENT [--latency-tolerance=1.0]
                       [--throughput-tolerance=0.25]

Joins the two documents on each series row's "series" key and fails (exit 1)
when, for any series:

  * a latency quantile (p50/p99/p999, nanoseconds) rises more than
    LATENCY_TOLERANCE above baseline (1.0 = may double), or
  * achieved_rounds_per_sec falls more than THROUGHPUT_TOLERANCE below
    baseline, or
  * the series ran with errors, or is missing from CURRENT.

Latency gates are deliberately loose by default: tail quantiles on shared CI
runners are noisy, and the gate's job is to catch order-of-magnitude serving
regressions (a lost coalescing path, an accidental Nagle re-enable), not
5% jitter.

Like compare_broker_scaling.py, absolute numbers are only comparable within
one machine class: when the two documents disagree on hardware_concurrency
the script emits a ::warning:: annotation and exits 0 without comparing
(pass --ignore-hardware-mismatch to force). A non-positive baseline value
for any gated metric fails loudly — a broken baseline must be re-recorded,
not silently skipped.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys

SCHEMA = "pdm.bench_serving.v1"
LATENCY_QUANTILES = ("p50", "p99", "p999")
THROUGHPUT_METRIC = "achieved_rounds_per_sec"


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"compare_serving: cannot read {path}: {err}")
    if doc.get("schema") != SCHEMA:
        sys.exit(
            f"compare_serving: {path} has schema "
            f"{doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    rows = {}
    for row in doc.get("series", []):
        name = row.get("series")
        if not name:
            sys.exit(f"compare_serving: {path} has a series row without a name")
        if name in rows:
            sys.exit(f"compare_serving: {path} repeats series {name!r}")
        rows[name] = row
    if not rows:
        sys.exit(f"compare_serving: {path} contains no series rows")
    return doc, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument(
        "--latency-tolerance",
        type=float,
        default=1.0,
        help="allowed fractional latency increase per quantile "
        "(default 1.0 = latency may double before failing)",
    )
    parser.add_argument(
        "--throughput-tolerance",
        type=float,
        default=0.25,
        help="allowed fractional throughput regression (default 0.25)",
    )
    parser.add_argument(
        "--ignore-hardware-mismatch",
        action="store_true",
        help="compare even when the documents report different "
        "hardware_concurrency (latency is NOT comparable across machine "
        "classes; expect noise)",
    )
    args = parser.parse_args()
    if args.latency_tolerance < 0.0:
        sys.exit("compare_serving: --latency-tolerance must be >= 0")
    if not 0.0 <= args.throughput_tolerance < 1.0:
        sys.exit("compare_serving: --throughput-tolerance must be in [0, 1)")

    base_doc, baseline = load_doc(args.baseline)
    cur_doc, current = load_doc(args.current)

    base_hw = base_doc.get("hardware_concurrency")
    cur_hw = cur_doc.get("hardware_concurrency")
    if (
        base_hw is not None
        and cur_hw is not None
        and base_hw != cur_hw
        and not args.ignore_hardware_mismatch
    ):
        # ONE summary annotation per document, naming every skipped series —
        # per-series annotations drown the checks UI as gates multiply.
        skipped = ", ".join(sorted(baseline))
        print(
            "::warning title=serving latency gate skipped::baseline "
            f"hardware_concurrency={base_hw} does not match runner {cur_hw}; "
            "the latency gate is NOT armed "
            f"({len(baseline)} series skipped: {skipped}). Refresh the "
            "committed baseline from a CI artifact (README 'Serving over TCP')."
        )
        print(
            f"SKIPPED: baseline was recorded with hardware_concurrency={base_hw}, "
            f"current has {cur_hw} — latency is not comparable across machine "
            "classes, so no gate was applied.\n"
            "To arm the gate, refresh the committed baseline from a run on this "
            "machine class (e.g. commit CI's BENCH_serving.ci.json artifact as "
            "BENCH_serving.json — README 'Serving over TCP'), or pass "
            "--ignore-hardware-mismatch to force the comparison."
        )
        return 0

    failures = []
    improvements = 0
    for name in sorted(baseline):
        base_row = baseline[name]
        if name not in current:
            failures.append(f"  {name}: present in baseline but missing from current")
            continue
        cur_row = current[name]

        if cur_row.get("errors", 0):
            failures.append(
                f"  {name}: current run reported {cur_row['errors']} request errors"
            )

        # Latency: higher is worse.
        base_lat = base_row.get("latency_ns", {})
        cur_lat = cur_row.get("latency_ns", {})
        for quantile in LATENCY_QUANTILES:
            base = base_lat.get(quantile)
            cur = cur_lat.get(quantile)
            if base is None or cur is None:
                failures.append(
                    f"  {name}: latency quantile {quantile!r} missing from a document"
                )
                continue
            if base <= 0:
                failures.append(
                    f"  {name}: baseline latency {quantile} is {base!r} "
                    "(non-positive) — the baseline is broken; re-record it "
                    "instead of comparing against it"
                )
                continue
            ratio = cur / base
            if ratio > 1.0 + args.latency_tolerance:
                failures.append(
                    f"  {name}: {quantile} latency rose {100 * (ratio - 1):.0f}% "
                    f"(baseline {base / 1e3:,.1f}us -> current {cur / 1e3:,.1f}us, "
                    f"tolerance {100 * args.latency_tolerance:.0f}%)"
                )
            elif ratio < 1.0:
                improvements += 1

        # Throughput: lower is worse.
        base = base_row.get(THROUGHPUT_METRIC)
        cur = cur_row.get(THROUGHPUT_METRIC)
        if base is None or cur is None:
            failures.append(
                f"  {name}: metric {THROUGHPUT_METRIC!r} missing from a document"
            )
        elif base <= 0:
            failures.append(
                f"  {name}: baseline {THROUGHPUT_METRIC} is {base!r} "
                "(non-positive) — the baseline is broken; re-record it instead "
                "of comparing against it"
            )
        else:
            ratio = cur / base
            if ratio < 1.0 - args.throughput_tolerance:
                failures.append(
                    f"  {name}: {THROUGHPUT_METRIC} regressed "
                    f"{100 * (1 - ratio):.1f}% (baseline {base:,.0f} -> "
                    f"current {cur:,.0f}, tolerance "
                    f"{100 * args.throughput_tolerance:.0f}%)"
                )
            elif ratio > 1.0:
                improvements += 1

    new_series = sorted(set(current) - set(baseline))
    if new_series:
        print(f"note: {len(new_series)} series not in baseline: {', '.join(new_series)}")

    if failures:
        print(
            f"FAIL: {len(failures)} serving gate failure(s) "
            f"({args.baseline} -> {args.current}):"
        )
        print("\n".join(failures))
        print(
            "If the slowdown is expected, refresh the committed baseline "
            "(README 'Serving over TCP')."
        )
        return 1
    print(
        f"OK: {len(baseline)} series within tolerance "
        f"(latency +{100 * args.latency_tolerance:.0f}%, throughput "
        f"-{100 * args.throughput_tolerance:.0f}%; {improvements} metrics improved)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
