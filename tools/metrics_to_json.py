#!/usr/bin/env python3
"""Convert a Prometheus text exposition scrape into JSON.

Usage:
    metrics_to_json.py SOURCE [--out=OUT.json]

SOURCE is a file path, "-" for stdin, or an http:// URL (the pdm_serve
scrape endpoint). The output document::

    {
      "schema": "pdm.metrics_json.v1",
      "families": [
        {"name": ..., "help": ..., "type": "counter" | "gauge" | "histogram"
                                          | "untyped",
         "samples": [{"name": ..., "labels": {...}, "value": ...}, ...]},
        ...
      ]
    }

Sample names keep their exposition suffixes (`_bucket`/`_sum`/`_count` for
histograms), so the document round-trips everything the scrape said without
inventing structure. Values parse as float; `NaN`/`+Inf`/`-Inf` are emitted
as the strings "NaN"/"+Inf"/"-Inf" since JSON has no literals for them.

This is the offline bridge from the DESIGN.md §13 registry to anything that
speaks JSON (jq, pandas, the compare scripts' tooling); the live paths are
the Prometheus endpoint itself and the GetMetrics wire opcode.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import math
import sys
import urllib.request


def read_source(source):
    if source == "-":
        return sys.stdin.read()
    if source.startswith("http://") or source.startswith("https://"):
        try:
            with urllib.request.urlopen(source, timeout=30) as response:
                return response.read().decode("utf-8")
        except OSError as err:
            sys.exit(f"metrics_to_json: cannot fetch {source}: {err}")
    try:
        with open(source, "r", encoding="utf-8") as fp:
            return fp.read()
    except OSError as err:
        sys.exit(f"metrics_to_json: cannot read {source}: {err}")


def unescape(text, quoted):
    """Reverses exposition escaping: \\\\, \\n, and (in label values) \\"."""
    out = []
    i = 0
    while i < len(text):
        c = text[i]
        if c == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if quoted and nxt == '"':
                out.append('"')
                i += 2
                continue
        out.append(c)
        i += 1
    return "".join(out)


def parse_labels(text, line_no):
    """Parses the inside of `{...}` into a dict (exposition label syntax)."""
    labels = {}
    i = 0
    while i < len(text):
        eq = text.find("=", i)
        if eq < 0 or eq + 1 >= len(text) or text[eq + 1] != '"':
            sys.exit(f"metrics_to_json: line {line_no}: malformed labels {text!r}")
        name = text[i:eq].strip()
        j = eq + 2
        value = []
        while j < len(text):
            if text[j] == "\\" and j + 1 < len(text):
                value.append(text[j : j + 2])
                j += 2
                continue
            if text[j] == '"':
                break
            value.append(text[j])
            j += 1
        if j >= len(text):
            sys.exit(f"metrics_to_json: line {line_no}: unterminated label value")
        labels[name] = unescape("".join(value), quoted=True)
        i = j + 1
        if i < len(text) and text[i] == ",":
            i += 1
    return labels


def parse_value(token, line_no):
    try:
        value = float(token)
    except ValueError:
        sys.exit(f"metrics_to_json: line {line_no}: bad sample value {token!r}")
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 2**53:
        return int(value)
    return value


def base_family(sample_name, families):
    """Maps a sample to its TYPE'd family, honoring histogram suffixes."""
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            stripped = sample_name[: -len(suffix)]
            if stripped in families and families[stripped]["type"] == "histogram":
                return stripped
    return None


def parse_exposition(text):
    families = {}  # name -> family dict, insertion-ordered
    order = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            kind = line[2:6]
            rest = line[7:]
            parts = rest.split(" ", 1)
            name = parts[0]
            payload = parts[1] if len(parts) > 1 else ""
            if name not in families:
                families[name] = {
                    "name": name,
                    "help": "",
                    "type": "untyped",
                    "samples": [],
                }
                order.append(name)
            if kind == "HELP":
                families[name]["help"] = unescape(payload, quoted=False)
            else:
                families[name]["type"] = payload.strip()
            continue
        if line.startswith("#"):
            continue  # comments other than HELP/TYPE are legal and ignored
        # Sample line: name[{labels}] value [timestamp]
        if "{" in line:
            name = line[: line.index("{")]
            close = line.rindex("}")
            labels = parse_labels(line[line.index("{") + 1 : close], line_no)
            remainder = line[close + 1 :].split()
        else:
            fields = line.split()
            if len(fields) < 2:
                sys.exit(f"metrics_to_json: line {line_no}: malformed sample {raw!r}")
            name = fields[0]
            labels = {}
            remainder = fields[1:]
        if not remainder:
            sys.exit(f"metrics_to_json: line {line_no}: sample without value")
        value = parse_value(remainder[0], line_no)
        family_name = base_family(name, families)
        if family_name is None:
            families[name] = {
                "name": name,
                "help": "",
                "type": "untyped",
                "samples": [],
            }
            order.append(name)
            family_name = name
        families[family_name]["samples"].append(
            {"name": name, "labels": labels, "value": value}
        )
    return [families[name] for name in order]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("source", help="scrape file, '-' for stdin, or http:// URL")
    parser.add_argument(
        "--out", default="-", help="output path (default '-' = stdout)"
    )
    args = parser.parse_args()

    document = {
        "schema": "pdm.metrics_json.v1",
        "families": parse_exposition(read_source(args.source)),
    }
    rendered = json.dumps(document, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(rendered)
    else:
        with open(args.out, "w", encoding="utf-8") as fp:
            fp.write(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
