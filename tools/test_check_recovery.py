#!/usr/bin/env python3
"""Unit tests for the chaos-drill recovery checker (stdlib unittest;
registered with CTest as `check_recovery_test`).

check_recovery.py is the CI kill -9 drill's verdict, so its own failure
modes are pinned the same way the compare scripts are: an empty spill
directory, a lost or altered spill, a quarantine after restart, or recovery
accounting that disagrees with the manifest must all be LOUD failures —
never a quiet pass that leaves the drill disarmed.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOLS = pathlib.Path(__file__).resolve().parent
CHECK_RECOVERY = TOOLS / "check_recovery.py"


def run(*argv):
    proc = subprocess.run(
        [sys.executable, str(CHECK_RECOVERY), *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, proc.stdout


def scrape_text(corruptions=0, omit=False):
    if omit:
        return "pdm_broker_quotes_total 5\n"
    return (
        "# HELP pdm_broker_spill_corruptions_total test counter.\n"
        "# TYPE pdm_broker_spill_corruptions_total counter\n"
        f"pdm_broker_spill_corruptions_total {corruptions}\n"
    )


class CheckRecoveryTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)
        self.root = pathlib.Path(self._dir.name)

    def spill_dir(self, name, files):
        directory = self.root / name
        directory.mkdir()
        for filename, payload in files.items():
            (directory / filename).write_bytes(payload)
        return directory

    def manifest_for(self, directory):
        out = self.root / f"{directory.name}.manifest.json"
        code, stdout = run("snapshot", str(directory), f"--out={out}")
        self.assertEqual(code, 0, stdout)
        return out

    def write_text(self, name, text):
        path = self.root / name
        path.write_text(text, encoding="utf-8")
        return path

    # ------------------------------------------------------------ snapshot

    def test_snapshot_fingerprints_snap_files_only(self):
        directory = self.spill_dir(
            "pre",
            {
                "slot-0.snap": b"alpha spill",
                "slot-1.snap": b"beta spill",
                "slot-2.snap.tmp": b"torn half-write",
                "slot-3.snap.quarantined": b"damaged",
            },
        )
        out = self.manifest_for(directory)
        doc = json.loads(out.read_text(encoding="utf-8"))
        self.assertEqual(doc["schema"], "pdm.spill_manifest.v1")
        names = [entry["name"] for entry in doc["files"]]
        self.assertEqual(names, ["slot-0.snap", "slot-1.snap"])
        self.assertEqual(doc["files"][0]["bytes"], len(b"alpha spill"))
        self.assertEqual(len(doc["files"][0]["sha256"]), 64)

    def test_snapshot_of_empty_dir_fails_loudly(self):
        """A drill that spilled nothing proves nothing — hard failure."""
        directory = self.spill_dir("empty", {"slot-0.snap.tmp": b"torn"})
        code, out = run("snapshot", str(directory), f"--out={self.root/'m.json'}")
        self.assertEqual(code, 1, out)
        self.assertIn("proves nothing", out)

    def test_snapshot_of_missing_dir_fails(self):
        code, out = run(
            "snapshot", str(self.root / "nope"), f"--out={self.root/'m.json'}"
        )
        self.assertEqual(code, 1, out)
        self.assertIn("not a directory", out)

    # --------------------------------------------------------- verify-files

    def test_verify_files_passes_when_bytes_survive(self):
        directory = self.spill_dir("ok", {"slot-0.snap": b"alpha", "slot-1.snap": b"beta"})
        manifest = self.manifest_for(directory)
        code, out = run("verify-files", str(manifest), str(directory))
        self.assertEqual(code, 0, out)
        self.assertIn("byte-for-byte", out)

    def test_verify_files_tolerates_adoption_renames_and_new_spills(self):
        directory = self.spill_dir("renamed", {"slot-4.snap": b"adopt me"})
        manifest = self.manifest_for(directory)
        # The restarted broker re-slotted the spill and wrote a new one.
        (directory / "slot-4.snap").rename(directory / "slot-0.snap")
        (directory / "slot-1.snap").write_bytes(b"fresh post-restart spill")
        code, out = run("verify-files", str(manifest), str(directory))
        self.assertEqual(code, 0, out)

    def test_verify_files_fails_on_altered_bytes(self):
        directory = self.spill_dir("torn", {"slot-0.snap": b"alpha"})
        manifest = self.manifest_for(directory)
        (directory / "slot-0.snap").write_bytes(b"alphA")
        code, out = run("verify-files", str(manifest), str(directory))
        self.assertEqual(code, 1, out)
        self.assertIn("lost or altered", out)
        self.assertIn("slot-0.snap", out)

    def test_verify_files_fails_on_lost_spill(self):
        directory = self.spill_dir(
            "lost", {"slot-0.snap": b"alpha", "slot-1.snap": b"beta"}
        )
        manifest = self.manifest_for(directory)
        (directory / "slot-1.snap").unlink()
        code, out = run("verify-files", str(manifest), str(directory))
        self.assertEqual(code, 1, out)
        self.assertIn("slot-1.snap", out)

    def test_verify_files_fails_on_quarantine_after_restart(self):
        directory = self.spill_dir("quar", {"slot-0.snap": b"alpha"})
        manifest = self.manifest_for(directory)
        (directory / "slot-9.snap.quarantined").write_bytes(b"damaged")
        code, out = run("verify-files", str(manifest), str(directory))
        self.assertEqual(code, 1, out)
        self.assertIn("quarantined", out)

    # -------------------------------------------------------- verify-scrape

    def serve_log(self, adopted=2, tmp=0, corrupt=0, orphans=0, omit=False):
        lines = [] if omit else [
            f"RECOVERY adopted={adopted} tmp={tmp} corrupt={corrupt} "
            f"orphans={orphans}"
        ]
        lines.append("LISTENING 7411")
        return self.write_text("serve.log", "\n".join(lines) + "\n")

    def two_spill_manifest(self):
        directory = self.spill_dir(
            "scrape", {"slot-0.snap": b"alpha", "slot-1.snap": b"beta"}
        )
        return self.manifest_for(directory)

    def test_verify_scrape_passes_on_clean_recovery(self):
        manifest = self.two_spill_manifest()
        scrape = self.write_text("scrape.txt", scrape_text())
        log = self.serve_log(adopted=2)
        code, out = run(
            "verify-scrape", str(manifest), str(scrape), f"--serve-log={log}"
        )
        self.assertEqual(code, 0, out)
        self.assertIn("adopted all 2", out)

    def test_verify_scrape_fails_on_adoption_shortfall(self):
        manifest = self.two_spill_manifest()
        scrape = self.write_text("scrape.txt", scrape_text())
        log = self.serve_log(adopted=1)
        code, out = run(
            "verify-scrape", str(manifest), str(scrape), f"--serve-log={log}"
        )
        self.assertEqual(code, 1, out)
        self.assertIn("did not reclaim", out)

    def test_verify_scrape_fails_on_recovery_corruption(self):
        manifest = self.two_spill_manifest()
        scrape = self.write_text("scrape.txt", scrape_text())
        log = self.serve_log(adopted=2, corrupt=1)
        code, out = run(
            "verify-scrape", str(manifest), str(scrape), f"--serve-log={log}"
        )
        self.assertEqual(code, 1, out)
        self.assertIn("quarantined", out)

    def test_verify_scrape_fails_on_missing_handshake_line(self):
        manifest = self.two_spill_manifest()
        scrape = self.write_text("scrape.txt", scrape_text())
        log = self.serve_log(omit=True)
        code, out = run(
            "verify-scrape", str(manifest), str(scrape), f"--serve-log={log}"
        )
        self.assertEqual(code, 1, out)
        self.assertIn("no RECOVERY handshake", out)

    def test_verify_scrape_fails_on_serving_corruptions(self):
        manifest = self.two_spill_manifest()
        scrape = self.write_text("scrape.txt", scrape_text(corruptions=3))
        log = self.serve_log(adopted=2)
        code, out = run(
            "verify-scrape", str(manifest), str(scrape), f"--serve-log={log}"
        )
        self.assertEqual(code, 1, out)
        self.assertIn("3 corruption(s)", out)

    def test_verify_scrape_fails_on_missing_counter(self):
        manifest = self.two_spill_manifest()
        scrape = self.write_text("scrape.txt", scrape_text(omit=True))
        code, out = run("verify-scrape", str(manifest), str(scrape))
        self.assertEqual(code, 1, out)
        self.assertIn("missing from the scrape", out)

    def test_verify_scrape_without_log_checks_scrape_only(self):
        manifest = self.two_spill_manifest()
        scrape = self.write_text("scrape.txt", scrape_text())
        code, out = run("verify-scrape", str(manifest), str(scrape))
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
