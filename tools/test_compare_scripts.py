#!/usr/bin/env python3
"""Unit tests for the CI compare scripts (stdlib unittest; registered with
CTest as `compare_scripts_test`).

The scripts are exercised as subprocesses — exit status and stdout are their
public contract with CI. The regression pinned here is the silently disarmed
gate: a baseline with a non-positive metric, or a hardware mismatch, must be
LOUD (hard failure, or exit 0 with a ::warning:: annotation), never a quiet
pass.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOLS = pathlib.Path(__file__).resolve().parent
SCALING = TOOLS / "compare_broker_scaling.py"
SERVING = TOOLS / "compare_serving.py"
MEMORY = TOOLS / "compare_memory.py"


def run(script, *argv):
    proc = subprocess.run(
        [sys.executable, str(script), *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, proc.stdout


def scaling_doc(rate=100000.0, hw=4, series="own-product/t=1", extra_series=()):
    rows = [
        {
            "series": series,
            "aggregate_rounds_per_sec": rate,
        }
    ]
    for name, value in extra_series:
        rows.append({"series": name, "aggregate_rounds_per_sec": value})
    return {
        "schema": "pdm.bench_broker.v2",
        "hardware_concurrency": hw,
        "series": rows,
    }


def serving_doc(p50=100000, p99=500000, p999=900000, rps=8000.0, hw=4, errors=0):
    return {
        "schema": "pdm.bench_serving.v1",
        "hardware_concurrency": hw,
        "series": [
            {
                "series": "round-trip",
                "errors": errors,
                "achieved_rounds_per_sec": rps,
                "latency_ns": {"p50": p50, "p99": p99, "p999": p999},
            }
        ],
    }


def memory_series(name, packed, bytes_per_product, fault_count=0, touch_errors=0):
    return {
        "series": name,
        "packed": packed,
        "bytes_per_product": bytes_per_product,
        "touch_errors": touch_errors,
        "resolve_ns": {"p50": 200, "p99": 900},
        "touch_ns": {"p50": 2000, "p99": 9000, "count": 10000},
        "fault_in_ns": {
            "p50": 5000000 if fault_count else 0,
            "p99": 12000000 if fault_count else 0,
            "count": fault_count,
        },
    }


def memory_doc(dense=10000.0, packed=4000.0, hw=4, touch_errors=0):
    return {
        "schema": "pdm.bench_memory.v1",
        "hardware_concurrency": hw,
        "series": [
            memory_series("packed-cold", True, packed, fault_count=5000,
                          touch_errors=touch_errors),
            memory_series("dense-resident", False, dense),
        ],
    }


class CompareScriptTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, doc):
        path = pathlib.Path(self._dir.name) / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    # ------------------------------------------------ scaling: pass/fail

    def test_scaling_ok(self):
        base = self.write("base.json", scaling_doc(rate=100000.0))
        cur = self.write("cur.json", scaling_doc(rate=99000.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_scaling_regression_fails(self):
        base = self.write("base.json", scaling_doc(rate=100000.0))
        cur = self.write("cur.json", scaling_doc(rate=50000.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("regressed", out)

    def test_scaling_missing_series_fails(self):
        base = self.write(
            "base.json",
            scaling_doc(extra_series=[("shared-product/t=1", 90000.0)]),
        )
        cur = self.write("cur.json", scaling_doc())
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("missing from current", out)

    def test_scaling_new_series_in_current_fails(self):
        """The set diff is symmetric: a series only in CURRENT fails too.

        A sweep cell the committed baseline has never adopted is a gate that
        can never arm; it must force a baseline refresh, not slide by as an
        unmonitored extra row.
        """
        base = self.write("base.json", scaling_doc())
        cur = self.write(
            "cur.json",
            scaling_doc(extra_series=[("own-product/t=1/b=8", 90000.0)]),
        )
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("missing from baseline", out)
        self.assertIn("refresh the committed baseline", out)

    # -------------------------------- scaling: the disarmed-gate bugfixes

    def test_scaling_zero_baseline_fails_loudly(self):
        """A non-positive baseline metric must FAIL, not silently pass."""
        base = self.write("base.json", scaling_doc(rate=0.0))
        cur = self.write("cur.json", scaling_doc(rate=100.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("non-positive", out)
        self.assertIn("re-record", out)

    def test_scaling_hardware_mismatch_skips_with_warning_annotation(self):
        base = self.write("base.json", scaling_doc(hw=1))
        cur = self.write("cur.json", scaling_doc(hw=4, rate=10.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("SKIPPED", out)
        self.assertIn("::warning", out)

    def test_scaling_hardware_mismatch_forced_comparison(self):
        base = self.write("base.json", scaling_doc(hw=1, rate=100000.0))
        cur = self.write("cur.json", scaling_doc(hw=4, rate=10.0))
        code, out = run(SCALING, base, cur, "--ignore-hardware-mismatch")
        self.assertEqual(code, 1, out)
        self.assertIn("regressed", out)

    # ------------------------------------------------------- serving

    def test_serving_ok(self):
        base = self.write("base.json", serving_doc())
        cur = self.write("cur.json", serving_doc(p99=520000, rps=7900.0))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_serving_latency_regression_fails(self):
        base = self.write("base.json", serving_doc(p99=500000))
        cur = self.write("cur.json", serving_doc(p99=2000000))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("p99 latency rose", out)

    def test_serving_latency_within_tolerance_passes(self):
        # Default latency tolerance is 1.0: doubling is the boundary.
        base = self.write("base.json", serving_doc(p999=900000))
        cur = self.write("cur.json", serving_doc(p999=1700000))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 0, out)

    def test_serving_throughput_regression_fails(self):
        base = self.write("base.json", serving_doc(rps=8000.0))
        cur = self.write("cur.json", serving_doc(rps=4000.0))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("achieved_rounds_per_sec", out)

    def test_serving_errors_fail(self):
        base = self.write("base.json", serving_doc())
        cur = self.write("cur.json", serving_doc(errors=3))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("request errors", out)

    def test_serving_zero_baseline_fails_loudly(self):
        base = self.write("base.json", serving_doc(p50=0))
        cur = self.write("cur.json", serving_doc())
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("non-positive", out)

    def test_serving_hardware_mismatch_skips_with_warning_annotation(self):
        base = self.write("base.json", serving_doc(hw=1))
        cur = self.write("cur.json", serving_doc(hw=4, p99=10**9))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("SKIPPED", out)
        self.assertIn("::warning", out)

    def test_serving_missing_series_fails(self):
        base = self.write("base.json", serving_doc())
        doc = serving_doc()
        doc["series"][0]["series"] = "renamed"
        cur = self.write("cur.json", doc)
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("missing from current", out)

    def test_serving_wrong_schema_rejected(self):
        base = self.write("base.json", serving_doc())
        cur = self.write("cur.json", scaling_doc())
        code, out = run(SERVING, base, cur)
        self.assertNotEqual(code, 0, out)
        self.assertIn("schema", out)

    # ------------------------------------------------------- memory

    def test_memory_ok(self):
        base = self.write("base.json", memory_doc())
        cur = self.write("cur.json", memory_doc(dense=10500.0, packed=4100.0))
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_memory_bytes_per_product_regression_fails(self):
        base = self.write("base.json", memory_doc(packed=4000.0))
        cur = self.write("cur.json", memory_doc(packed=6000.0))
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("bytes_per_product rose", out)

    def test_memory_savings_gate_fails_even_against_matching_baseline(self):
        """The intra-document gate: packed-cold must beat dense-resident by
        --min-savings even when CURRENT matches the baseline perfectly."""
        doc = memory_doc(dense=10000.0, packed=8000.0)  # only 20% savings
        base = self.write("base.json", doc)
        cur = self.write("cur.json", doc)
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("saves only 20.0%", out)

    def test_memory_savings_gate_threshold_is_tunable(self):
        doc = memory_doc(dense=10000.0, packed=8000.0)
        base = self.write("base.json", doc)
        cur = self.write("cur.json", doc)
        code, out = run(MEMORY, base, cur, "--min-savings=0.15")
        self.assertEqual(code, 0, out)

    def test_memory_missing_required_series_fails(self):
        base = self.write("base.json", memory_doc())
        doc = memory_doc()
        doc["series"] = [doc["series"][1]]  # drop packed-cold
        cur = self.write("cur.json", doc)
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("'packed-cold' is missing", out)

    def test_memory_touch_errors_fail(self):
        base = self.write("base.json", memory_doc())
        cur = self.write("cur.json", memory_doc(touch_errors=2))
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("touch errors", out)

    def test_memory_zero_baseline_fails_loudly(self):
        base = self.write("base.json", memory_doc(dense=0.0))
        cur = self.write("cur.json", memory_doc())
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("non-positive", out)
        self.assertIn("re-record", out)

    def test_memory_fault_latency_regression_fails(self):
        base = self.write("base.json", memory_doc())
        doc = memory_doc()
        doc["series"][0]["fault_in_ns"]["p99"] = 50000000
        cur = self.write("cur.json", doc)
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("fault_in_ns.p99 rose", out)

    def test_memory_empty_fault_histogram_in_both_documents_is_not_a_gate(self):
        # The dense series never faults; an all-zero fault_in_ns group on
        # both sides must not trip the non-positive-baseline check.
        base = self.write("base.json", memory_doc())
        cur = self.write("cur.json", memory_doc())
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 0, out)

    def test_memory_hardware_mismatch_skips_baseline_but_keeps_savings_gate(self):
        # Baseline comparison skipped (different machine class), but the
        # intra-document savings gate still runs — and passes here.
        base = self.write("base.json", memory_doc(hw=1))
        cur = self.write("cur.json", memory_doc(hw=4, packed=4100.0))
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("SKIPPED", out)
        self.assertIn("::warning", out)
        self.assertIn("savings gate", out)

    def test_memory_hardware_mismatch_still_fails_on_lost_savings(self):
        base = self.write("base.json", memory_doc(hw=1))
        cur = self.write("cur.json", memory_doc(hw=4, packed=9000.0))
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("saves only", out)

    def test_memory_hardware_mismatch_forced_comparison(self):
        base = self.write("base.json", memory_doc(hw=1, packed=4000.0))
        cur = self.write("cur.json", memory_doc(hw=4, packed=6000.0))
        code, out = run(MEMORY, base, cur, "--ignore-hardware-mismatch")
        self.assertEqual(code, 1, out)
        self.assertIn("bytes_per_product rose", out)

    def test_memory_wrong_schema_rejected(self):
        base = self.write("base.json", memory_doc())
        cur = self.write("cur.json", serving_doc())
        code, out = run(MEMORY, base, cur)
        self.assertNotEqual(code, 0, out)
        self.assertIn("schema", out)


if __name__ == "__main__":
    unittest.main()
