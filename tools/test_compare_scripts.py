#!/usr/bin/env python3
"""Unit tests for the CI compare scripts (stdlib unittest; registered with
CTest as `compare_scripts_test`).

The scripts are exercised as subprocesses — exit status and stdout are their
public contract with CI. The regression pinned here is the silently disarmed
gate: a baseline with a non-positive metric, or a hardware mismatch, must be
LOUD (hard failure, or exit 0 with a ::warning:: annotation), never a quiet
pass.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOLS = pathlib.Path(__file__).resolve().parent
SCALING = TOOLS / "compare_broker_scaling.py"
SERVING = TOOLS / "compare_serving.py"


def run(script, *argv):
    proc = subprocess.run(
        [sys.executable, str(script), *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, proc.stdout


def scaling_doc(rate=100000.0, hw=4, series="own-product/t=1", extra_series=()):
    rows = [
        {
            "series": series,
            "aggregate_rounds_per_sec": rate,
        }
    ]
    for name, value in extra_series:
        rows.append({"series": name, "aggregate_rounds_per_sec": value})
    return {
        "schema": "pdm.bench_broker.v2",
        "hardware_concurrency": hw,
        "series": rows,
    }


def serving_doc(p50=100000, p99=500000, p999=900000, rps=8000.0, hw=4, errors=0):
    return {
        "schema": "pdm.bench_serving.v1",
        "hardware_concurrency": hw,
        "series": [
            {
                "series": "round-trip",
                "errors": errors,
                "achieved_rounds_per_sec": rps,
                "latency_ns": {"p50": p50, "p99": p99, "p999": p999},
            }
        ],
    }


class CompareScriptTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, doc):
        path = pathlib.Path(self._dir.name) / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    # ------------------------------------------------ scaling: pass/fail

    def test_scaling_ok(self):
        base = self.write("base.json", scaling_doc(rate=100000.0))
        cur = self.write("cur.json", scaling_doc(rate=99000.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_scaling_regression_fails(self):
        base = self.write("base.json", scaling_doc(rate=100000.0))
        cur = self.write("cur.json", scaling_doc(rate=50000.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("regressed", out)

    def test_scaling_missing_series_fails(self):
        base = self.write(
            "base.json",
            scaling_doc(extra_series=[("shared-product/t=1", 90000.0)]),
        )
        cur = self.write("cur.json", scaling_doc())
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("missing from current", out)

    def test_scaling_new_series_in_current_fails(self):
        """The set diff is symmetric: a series only in CURRENT fails too.

        A sweep cell the committed baseline has never adopted is a gate that
        can never arm; it must force a baseline refresh, not slide by as an
        unmonitored extra row.
        """
        base = self.write("base.json", scaling_doc())
        cur = self.write(
            "cur.json",
            scaling_doc(extra_series=[("own-product/t=1/b=8", 90000.0)]),
        )
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("missing from baseline", out)
        self.assertIn("refresh the committed baseline", out)

    # -------------------------------- scaling: the disarmed-gate bugfixes

    def test_scaling_zero_baseline_fails_loudly(self):
        """A non-positive baseline metric must FAIL, not silently pass."""
        base = self.write("base.json", scaling_doc(rate=0.0))
        cur = self.write("cur.json", scaling_doc(rate=100.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("non-positive", out)
        self.assertIn("re-record", out)

    def test_scaling_hardware_mismatch_skips_with_warning_annotation(self):
        base = self.write("base.json", scaling_doc(hw=1))
        cur = self.write("cur.json", scaling_doc(hw=4, rate=10.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("SKIPPED", out)
        self.assertIn("::warning", out)

    def test_scaling_hardware_mismatch_forced_comparison(self):
        base = self.write("base.json", scaling_doc(hw=1, rate=100000.0))
        cur = self.write("cur.json", scaling_doc(hw=4, rate=10.0))
        code, out = run(SCALING, base, cur, "--ignore-hardware-mismatch")
        self.assertEqual(code, 1, out)
        self.assertIn("regressed", out)

    # ------------------------------------------------------- serving

    def test_serving_ok(self):
        base = self.write("base.json", serving_doc())
        cur = self.write("cur.json", serving_doc(p99=520000, rps=7900.0))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_serving_latency_regression_fails(self):
        base = self.write("base.json", serving_doc(p99=500000))
        cur = self.write("cur.json", serving_doc(p99=2000000))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("p99 latency rose", out)

    def test_serving_latency_within_tolerance_passes(self):
        # Default latency tolerance is 1.0: doubling is the boundary.
        base = self.write("base.json", serving_doc(p999=900000))
        cur = self.write("cur.json", serving_doc(p999=1700000))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 0, out)

    def test_serving_throughput_regression_fails(self):
        base = self.write("base.json", serving_doc(rps=8000.0))
        cur = self.write("cur.json", serving_doc(rps=4000.0))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("achieved_rounds_per_sec", out)

    def test_serving_errors_fail(self):
        base = self.write("base.json", serving_doc())
        cur = self.write("cur.json", serving_doc(errors=3))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("request errors", out)

    def test_serving_zero_baseline_fails_loudly(self):
        base = self.write("base.json", serving_doc(p50=0))
        cur = self.write("cur.json", serving_doc())
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("non-positive", out)

    def test_serving_hardware_mismatch_skips_with_warning_annotation(self):
        base = self.write("base.json", serving_doc(hw=1))
        cur = self.write("cur.json", serving_doc(hw=4, p99=10**9))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("SKIPPED", out)
        self.assertIn("::warning", out)

    def test_serving_missing_series_fails(self):
        base = self.write("base.json", serving_doc())
        doc = serving_doc()
        doc["series"][0]["series"] = "renamed"
        cur = self.write("cur.json", doc)
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("missing from current", out)

    def test_serving_wrong_schema_rejected(self):
        base = self.write("base.json", serving_doc())
        cur = self.write("cur.json", scaling_doc())
        code, out = run(SERVING, base, cur)
        self.assertNotEqual(code, 0, out)
        self.assertIn("schema", out)


if __name__ == "__main__":
    unittest.main()
