#!/usr/bin/env python3
"""Unit tests for the CI compare scripts (stdlib unittest; registered with
CTest as `compare_scripts_test`).

The scripts are exercised as subprocesses — exit status and stdout are their
public contract with CI. The regression pinned here is the silently disarmed
gate: a baseline with a non-positive metric, or a hardware mismatch, must be
LOUD (hard failure, or exit 0 with a ::warning:: annotation), never a quiet
pass.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOLS = pathlib.Path(__file__).resolve().parent
SCALING = TOOLS / "compare_broker_scaling.py"
SERVING = TOOLS / "compare_serving.py"
MEMORY = TOOLS / "compare_memory.py"
CHECK_METRICS = TOOLS / "check_metrics.py"
METRICS_TO_JSON = TOOLS / "metrics_to_json.py"


def run(script, *argv):
    proc = subprocess.run(
        [sys.executable, str(script), *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, proc.stdout


def scaling_doc(rate=100000.0, hw=4, series="own-product/t=1", extra_series=()):
    rows = [
        {
            "series": series,
            "aggregate_rounds_per_sec": rate,
        }
    ]
    for name, value in extra_series:
        rows.append({"series": name, "aggregate_rounds_per_sec": value})
    return {
        "schema": "pdm.bench_broker.v2",
        "hardware_concurrency": hw,
        "series": rows,
    }


def serving_doc(p50=100000, p99=500000, p999=900000, rps=8000.0, hw=4, errors=0,
                quotes=1000, accepts=600, rejects=400):
    return {
        "schema": "pdm.bench_serving.v1",
        "hardware_concurrency": hw,
        "series": [
            {
                "series": "round-trip",
                "errors": errors,
                "quotes": quotes,
                "accepts": accepts,
                "rejects": rejects,
                "achieved_rounds_per_sec": rps,
                "latency_ns": {"p50": p50, "p99": p99, "p999": p999},
            }
        ],
    }


def scrape_text(quotes=1000, accepts=600, rejects=400, protocol_errors=0,
                omit=()):
    """A minimal pdm_serve exposition document for check_metrics tests."""
    lines = []
    for name, value in (
        ("pdm_broker_quotes_total", quotes),
        ("pdm_broker_accepts_total", accepts),
        ("pdm_broker_rejects_total", rejects),
        ("pdm_server_protocol_errors_total", protocol_errors),
    ):
        if name in omit:
            continue
        lines.append(f"# HELP {name} test counter.")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")
    return "\n".join(lines) + "\n"


def memory_series(name, packed, bytes_per_product, fault_count=0, touch_errors=0):
    return {
        "series": name,
        "packed": packed,
        "bytes_per_product": bytes_per_product,
        "touch_errors": touch_errors,
        "resolve_ns": {"p50": 200, "p99": 900},
        "touch_ns": {"p50": 2000, "p99": 9000, "count": 10000},
        "fault_in_ns": {
            "p50": 5000000 if fault_count else 0,
            "p99": 12000000 if fault_count else 0,
            "count": fault_count,
        },
    }


def memory_doc(dense=10000.0, packed=4000.0, hw=4, touch_errors=0):
    return {
        "schema": "pdm.bench_memory.v1",
        "hardware_concurrency": hw,
        "series": [
            memory_series("packed-cold", True, packed, fault_count=5000,
                          touch_errors=touch_errors),
            memory_series("dense-resident", False, dense),
        ],
    }


class CompareScriptTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, doc):
        path = pathlib.Path(self._dir.name) / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    # ------------------------------------------------ scaling: pass/fail

    def test_scaling_ok(self):
        base = self.write("base.json", scaling_doc(rate=100000.0))
        cur = self.write("cur.json", scaling_doc(rate=99000.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_scaling_regression_fails(self):
        base = self.write("base.json", scaling_doc(rate=100000.0))
        cur = self.write("cur.json", scaling_doc(rate=50000.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("regressed", out)

    def test_scaling_missing_series_fails(self):
        base = self.write(
            "base.json",
            scaling_doc(extra_series=[("shared-product/t=1", 90000.0)]),
        )
        cur = self.write("cur.json", scaling_doc())
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("missing from current", out)

    def test_scaling_new_series_in_current_fails(self):
        """The set diff is symmetric: a series only in CURRENT fails too.

        A sweep cell the committed baseline has never adopted is a gate that
        can never arm; it must force a baseline refresh, not slide by as an
        unmonitored extra row.
        """
        base = self.write("base.json", scaling_doc())
        cur = self.write(
            "cur.json",
            scaling_doc(extra_series=[("own-product/t=1/b=8", 90000.0)]),
        )
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("missing from baseline", out)
        self.assertIn("refresh the committed baseline", out)

    # -------------------------------- scaling: the disarmed-gate bugfixes

    def test_scaling_zero_baseline_fails_loudly(self):
        """A non-positive baseline metric must FAIL, not silently pass."""
        base = self.write("base.json", scaling_doc(rate=0.0))
        cur = self.write("cur.json", scaling_doc(rate=100.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("non-positive", out)
        self.assertIn("re-record", out)

    def test_scaling_hardware_mismatch_skips_with_warning_annotation(self):
        base = self.write("base.json", scaling_doc(hw=1))
        cur = self.write("cur.json", scaling_doc(hw=4, rate=10.0))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("SKIPPED", out)
        self.assertIn("::warning", out)

    def test_scaling_skip_annotation_is_one_summary_listing_all_series(self):
        """ONE ::warning annotation per document, naming every skipped series
        — not one annotation per series (which drowns the checks UI)."""
        base = self.write(
            "base.json",
            scaling_doc(hw=1, extra_series=[("shared-product/t=1", 90000.0),
                                            ("own-product/t=8", 80000.0)]),
        )
        cur = self.write("cur.json", scaling_doc(hw=4))
        code, out = run(SCALING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertEqual(out.count("::warning"), 1)
        self.assertIn("3 series skipped", out)
        for name in ("own-product/t=1", "own-product/t=8", "shared-product/t=1"):
            self.assertIn(name, out)

    def test_scaling_hardware_mismatch_forced_comparison(self):
        base = self.write("base.json", scaling_doc(hw=1, rate=100000.0))
        cur = self.write("cur.json", scaling_doc(hw=4, rate=10.0))
        code, out = run(SCALING, base, cur, "--ignore-hardware-mismatch")
        self.assertEqual(code, 1, out)
        self.assertIn("regressed", out)

    # ------------------------------------------------------- serving

    def test_serving_ok(self):
        base = self.write("base.json", serving_doc())
        cur = self.write("cur.json", serving_doc(p99=520000, rps=7900.0))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_serving_latency_regression_fails(self):
        base = self.write("base.json", serving_doc(p99=500000))
        cur = self.write("cur.json", serving_doc(p99=2000000))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("p99 latency rose", out)

    def test_serving_latency_within_tolerance_passes(self):
        # Default latency tolerance is 1.0: doubling is the boundary.
        base = self.write("base.json", serving_doc(p999=900000))
        cur = self.write("cur.json", serving_doc(p999=1700000))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 0, out)

    def test_serving_throughput_regression_fails(self):
        base = self.write("base.json", serving_doc(rps=8000.0))
        cur = self.write("cur.json", serving_doc(rps=4000.0))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("achieved_rounds_per_sec", out)

    def test_serving_errors_fail(self):
        base = self.write("base.json", serving_doc())
        cur = self.write("cur.json", serving_doc(errors=3))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("request errors", out)

    def test_serving_zero_baseline_fails_loudly(self):
        base = self.write("base.json", serving_doc(p50=0))
        cur = self.write("cur.json", serving_doc())
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("non-positive", out)

    def test_serving_hardware_mismatch_skips_with_warning_annotation(self):
        base = self.write("base.json", serving_doc(hw=1))
        cur = self.write("cur.json", serving_doc(hw=4, p99=10**9))
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("SKIPPED", out)
        self.assertEqual(out.count("::warning"), 1)
        self.assertIn("series skipped: round-trip", out)

    def test_serving_missing_series_fails(self):
        base = self.write("base.json", serving_doc())
        doc = serving_doc()
        doc["series"][0]["series"] = "renamed"
        cur = self.write("cur.json", doc)
        code, out = run(SERVING, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("missing from current", out)

    def test_serving_wrong_schema_rejected(self):
        base = self.write("base.json", serving_doc())
        cur = self.write("cur.json", scaling_doc())
        code, out = run(SERVING, base, cur)
        self.assertNotEqual(code, 0, out)
        self.assertIn("schema", out)

    # ------------------------------------------------------- memory

    def test_memory_ok(self):
        base = self.write("base.json", memory_doc())
        cur = self.write("cur.json", memory_doc(dense=10500.0, packed=4100.0))
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_memory_bytes_per_product_regression_fails(self):
        base = self.write("base.json", memory_doc(packed=4000.0))
        cur = self.write("cur.json", memory_doc(packed=6000.0))
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("bytes_per_product rose", out)

    def test_memory_savings_gate_fails_even_against_matching_baseline(self):
        """The intra-document gate: packed-cold must beat dense-resident by
        --min-savings even when CURRENT matches the baseline perfectly."""
        doc = memory_doc(dense=10000.0, packed=8000.0)  # only 20% savings
        base = self.write("base.json", doc)
        cur = self.write("cur.json", doc)
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("saves only 20.0%", out)

    def test_memory_savings_gate_threshold_is_tunable(self):
        doc = memory_doc(dense=10000.0, packed=8000.0)
        base = self.write("base.json", doc)
        cur = self.write("cur.json", doc)
        code, out = run(MEMORY, base, cur, "--min-savings=0.15")
        self.assertEqual(code, 0, out)

    def test_memory_missing_required_series_fails(self):
        base = self.write("base.json", memory_doc())
        doc = memory_doc()
        doc["series"] = [doc["series"][1]]  # drop packed-cold
        cur = self.write("cur.json", doc)
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("'packed-cold' is missing", out)

    def test_memory_touch_errors_fail(self):
        base = self.write("base.json", memory_doc())
        cur = self.write("cur.json", memory_doc(touch_errors=2))
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("touch errors", out)

    def test_memory_zero_baseline_fails_loudly(self):
        base = self.write("base.json", memory_doc(dense=0.0))
        cur = self.write("cur.json", memory_doc())
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("non-positive", out)
        self.assertIn("re-record", out)

    def test_memory_fault_latency_regression_fails(self):
        base = self.write("base.json", memory_doc())
        doc = memory_doc()
        doc["series"][0]["fault_in_ns"]["p99"] = 50000000
        cur = self.write("cur.json", doc)
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("fault_in_ns.p99 rose", out)

    def test_memory_empty_fault_histogram_in_both_documents_is_not_a_gate(self):
        # The dense series never faults; an all-zero fault_in_ns group on
        # both sides must not trip the non-positive-baseline check.
        base = self.write("base.json", memory_doc())
        cur = self.write("cur.json", memory_doc())
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 0, out)

    def test_memory_hardware_mismatch_skips_baseline_but_keeps_savings_gate(self):
        # Baseline comparison skipped (different machine class), but the
        # intra-document savings gate still runs — and passes here.
        base = self.write("base.json", memory_doc(hw=1))
        cur = self.write("cur.json", memory_doc(hw=4, packed=4100.0))
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("SKIPPED", out)
        self.assertEqual(out.count("::warning"), 1)
        self.assertIn("series skipped", out)
        self.assertIn("savings gate", out)

    def test_memory_hardware_mismatch_still_fails_on_lost_savings(self):
        base = self.write("base.json", memory_doc(hw=1))
        cur = self.write("cur.json", memory_doc(hw=4, packed=9000.0))
        code, out = run(MEMORY, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("saves only", out)

    def test_memory_hardware_mismatch_forced_comparison(self):
        base = self.write("base.json", memory_doc(hw=1, packed=4000.0))
        cur = self.write("cur.json", memory_doc(hw=4, packed=6000.0))
        code, out = run(MEMORY, base, cur, "--ignore-hardware-mismatch")
        self.assertEqual(code, 1, out)
        self.assertIn("bytes_per_product rose", out)

    def test_memory_wrong_schema_rejected(self):
        base = self.write("base.json", memory_doc())
        cur = self.write("cur.json", serving_doc())
        code, out = run(MEMORY, base, cur)
        self.assertNotEqual(code, 0, out)
        self.assertIn("schema", out)

    # -------------------------------------------- check_metrics (scrapes)

    def write_text(self, name, text):
        path = pathlib.Path(self._dir.name) / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_check_metrics_exact_reconciliation_passes(self):
        scrape = self.write_text("scrape.txt", scrape_text())
        serving = self.write("serving.json", serving_doc())
        code, out = run(CHECK_METRICS, scrape, serving)
        self.assertEqual(code, 0, out)
        self.assertIn("reconciles", out)
        self.assertIn("quotes=1000", out)

    def test_check_metrics_counter_mismatch_fails(self):
        # One lost quote: client saw 1000, server counted 999.
        scrape = self.write_text("scrape.txt", scrape_text(quotes=999, rejects=399))
        serving = self.write("serving.json", serving_doc())
        code, out = run(CHECK_METRICS, scrape, serving)
        self.assertEqual(code, 1, out)
        self.assertIn("exact reconciliation failed", out)
        self.assertIn("pdm_broker_quotes_total", out)

    def test_check_metrics_leaked_tickets_fail(self):
        # Internally inconsistent scrape: accepts + rejects < quotes.
        scrape = self.write_text(
            "scrape.txt", scrape_text(quotes=1000, accepts=600, rejects=300)
        )
        serving = self.write("serving.json", serving_doc(rejects=300))
        code, out = run(CHECK_METRICS, scrape, serving)
        self.assertEqual(code, 1, out)
        self.assertIn("leaked", out)

    def test_check_metrics_missing_counter_fails(self):
        scrape = self.write_text(
            "scrape.txt", scrape_text(omit=("pdm_broker_accepts_total",))
        )
        serving = self.write("serving.json", serving_doc())
        code, out = run(CHECK_METRICS, scrape, serving)
        self.assertEqual(code, 1, out)
        self.assertIn("missing from the scrape", out)

    def test_check_metrics_protocol_errors_fail(self):
        scrape = self.write_text("scrape.txt", scrape_text(protocol_errors=2))
        serving = self.write("serving.json", serving_doc())
        code, out = run(CHECK_METRICS, scrape, serving)
        self.assertEqual(code, 1, out)
        self.assertIn("protocol errors", out)

    def test_check_metrics_old_loadgen_without_tallies_fails_loudly(self):
        scrape = self.write_text("scrape.txt", scrape_text())
        doc = serving_doc()
        for field in ("quotes", "accepts", "rejects"):
            del doc["series"][0][field]
        serving = self.write("serving.json", doc)
        code, out = run(CHECK_METRICS, scrape, serving)
        self.assertNotEqual(code, 0, out)
        self.assertIn("rebuild", out)

    def test_check_metrics_sums_tallies_across_series(self):
        scrape = self.write_text(
            "scrape.txt", scrape_text(quotes=1500, accepts=900, rejects=600)
        )
        doc = serving_doc()
        doc["series"].append(
            {"series": "second", "errors": 0, "quotes": 500, "accepts": 300,
             "rejects": 200, "achieved_rounds_per_sec": 1.0,
             "latency_ns": {"p50": 1, "p99": 2, "p999": 3}}
        )
        serving = self.write("serving.json", doc)
        code, out = run(CHECK_METRICS, scrape, serving)
        self.assertEqual(code, 0, out)

    # ------------------------------------------ metrics_to_json (bridge)

    def test_metrics_to_json_converts_families_and_samples(self):
        scrape = self.write_text("scrape.txt", scrape_text())
        code, out = run(METRICS_TO_JSON, scrape)
        self.assertEqual(code, 0, out)
        doc = json.loads(out)
        self.assertEqual(doc["schema"], "pdm.metrics_json.v1")
        by_name = {f["name"]: f for f in doc["families"]}
        quotes = by_name["pdm_broker_quotes_total"]
        self.assertEqual(quotes["type"], "counter")
        self.assertEqual(quotes["help"], "test counter.")
        self.assertEqual(quotes["samples"], [
            {"name": "pdm_broker_quotes_total", "labels": {}, "value": 1000}
        ])

    def test_metrics_to_json_groups_histogram_suffixes_and_labels(self):
        text = (
            "# HELP pdm_server_request_ns Wire request latency.\n"
            "# TYPE pdm_server_request_ns histogram\n"
            'pdm_server_request_ns_bucket{le="1023"} 5\n'
            'pdm_server_request_ns_bucket{le="+Inf"} 7\n'
            "pdm_server_request_ns_sum 12345\n"
            "pdm_server_request_ns_count 7\n"
            "# HELP pdm_server_frames_total Frames by opcode.\n"
            "# TYPE pdm_server_frames_total counter\n"
            'pdm_server_frames_total{opcode="post_price"} 9\n'
        )
        scrape = self.write_text("scrape.txt", text)
        code, out = run(METRICS_TO_JSON, scrape)
        self.assertEqual(code, 0, out)
        doc = json.loads(out)
        by_name = {f["name"]: f for f in doc["families"]}
        hist = by_name["pdm_server_request_ns"]
        self.assertEqual(hist["type"], "histogram")
        self.assertEqual(len(hist["samples"]), 4)  # suffixes fold into family
        inf_bucket = [s for s in hist["samples"]
                      if s["labels"].get("le") == "+Inf"]
        self.assertEqual(inf_bucket[0]["value"], 7)
        frames = by_name["pdm_server_frames_total"]
        self.assertEqual(frames["samples"][0]["labels"], {"opcode": "post_price"})

    def test_metrics_to_json_unescapes_and_handles_nonfinite(self):
        text = (
            "# HELP esc_total line1\\nback\\\\slash\n"
            "# TYPE esc_total counter\n"
            'esc_total{op="a\\"b\\\\c\\nd"} 1\n'
            "# HELP g A gauge.\n"
            "# TYPE g gauge\n"
            "g NaN\n"
        )
        scrape = self.write_text("scrape.txt", text)
        code, out = run(METRICS_TO_JSON, scrape)
        self.assertEqual(code, 0, out)
        doc = json.loads(out)
        by_name = {f["name"]: f for f in doc["families"]}
        self.assertEqual(by_name["esc_total"]["help"], "line1\nback\\slash")
        self.assertEqual(by_name["esc_total"]["samples"][0]["labels"]["op"],
                         'a"b\\c\nd')
        self.assertEqual(by_name["g"]["samples"][0]["value"], "NaN")

    def test_metrics_to_json_writes_out_file(self):
        scrape = self.write_text("scrape.txt", scrape_text())
        out_path = pathlib.Path(self._dir.name) / "metrics.json"
        code, out = run(METRICS_TO_JSON, scrape, f"--out={out_path}")
        self.assertEqual(code, 0, out)
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        self.assertEqual(doc["schema"], "pdm.metrics_json.v1")


if __name__ == "__main__":
    unittest.main()
